type config = {
  max_faults : int;
  horizon : int;
  stride : int;
  budget : int;
  max_steps : int;
  kinds : Schedule.kind list;
  degrade : bool;
}

let default_config (sys : Model.System.t) =
  {
    max_faults = 1;
    horizon = 2 * Array.length sys.Model.System.tasks;
    stride = 1;
    budget = 1_024;
    max_steps = 20_000;
    kinds = [ Schedule.Crash_k ];
    degrade = false;
  }

type violation = {
  schedule : Schedule.t;
  monitor : string;
  reason : string;
  proven : bool;
  exec : Model.Exec.t;
  steps : int;
  degraded_to : string option;
}

let degraded_to_of cfg sys exec =
  if cfg.degrade then Some (Degrade.describe sys exec) else None

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>%s violated (%s) under schedule [%a]:@,%s@]" v.monitor
    (if v.proven then "proven" else "bounded evidence")
    Schedule.pp v.schedule v.reason;
  match v.degraded_to with
  | None -> ()
  | Some vec -> Format.fprintf ppf "@,degraded to %s" vec

type report = {
  examined : int;
  space : int;
  truncated : bool;
  wall_truncated : bool;
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  undelivered_net : int;
  vacuous_net_faults : int;
  dedup_hits : int;
  static_prunes : int;
  por_prunes : int;
  violation : violation option;
}

let grid cfg = List.init ((cfg.horizon + cfg.stride - 1) / cfg.stride) (fun i -> i * cfg.stride)

let rec choose k lst =
  (* k-subsets of [lst], lexicographic, as a lazy sequence. *)
  if k = 0 then Seq.return []
  else
    match lst with
    | [] -> Seq.empty
    | x :: rest ->
      Seq.append
        (Seq.map (fun c -> x :: c) (choose (k - 1) rest))
        (fun () -> choose k rest ())

let rec tuples k points =
  (* k-tuples over [points] (crash steps per chosen pid), lexicographic. *)
  if k = 0 then Seq.return []
  else
    Seq.flat_map
      (fun tl -> Seq.map (fun p -> p :: tl) (List.to_seq points))
      (fun () -> tuples (k - 1) points ())

(* Fault-site templates: one per (kind, target) pair; the step grid
   instantiates them. Crash templates come first, in pid order, so with
   [kinds = [Crash_k]] the candidate stream is exactly the crash-only
   enumeration of the earlier engine — the invariant the pinned differential
   in test_chaos_net.ml protects. *)
let templates (sys : Model.System.t) cfg =
  let n = Model.System.n_processes sys in
  let service_endpoints =
    Array.to_list sys.Model.System.services
    |> List.concat_map (fun (c : Model.Service.t) ->
           List.map
             (fun ep -> c.Model.Service.id, ep)
             (Array.to_list c.Model.Service.endpoints))
  in
  let heal_of step = step + max 1 (cfg.horizon / 2) in
  List.concat_map
    (function
      | Schedule.Crash_k -> List.init n (fun pid step -> Schedule.crash ~step ~pid)
      | Schedule.Silence_k ->
        Array.to_list sys.Model.System.services
        |> List.map (fun (c : Model.Service.t) step ->
               Schedule.silence ~step ~service:c.Model.Service.id)
      | Schedule.Drop_k ->
        List.map
          (fun (service, endpoint) step -> Schedule.drop ~step ~service ~endpoint)
          service_endpoints
      | Schedule.Dup_k ->
        List.map
          (fun (service, endpoint) step -> Schedule.duplicate ~step ~service ~endpoint)
          service_endpoints
      | Schedule.Delay_k ->
        List.map
          (fun (service, endpoint) step -> Schedule.delay ~step ~service ~endpoint ~lag:1)
          service_endpoints
      | Schedule.Partition_k ->
        (* Isolate-one-pid splits — the coarsest §6.3-meaningful partitions;
           finer block structures are reachable by stacking several. Heal at
           half a horizon later, so degradation is graceful within the
           explored window. *)
        if n < 2 then []
        else
          List.init n (fun pid step ->
              Schedule.partition ~step ~blocks:[ [ pid ] ] ~heal_at:(heal_of step)))
    cfg.kinds

let schedules sys cfg =
  let points = grid cfg in
  let tmpls = templates sys cfg in
  let of_size k =
    Seq.flat_map
      (fun subset ->
        Seq.map
          (fun steps ->
            Schedule.make (List.map2 (fun tmpl step -> tmpl step) subset (List.rev steps)))
          (tuples k points))
      (choose k tmpls)
  in
  Seq.flat_map of_size (Seq.init (cfg.max_faults + 1) Fun.id)

let space_size sys cfg =
  let g = List.length (grid cfg) in
  let t = List.length (templates sys cfg) in
  let rec binom n k = if k = 0 || k = n then 1 else binom (n - 1) (k - 1) + binom (n - 1) k in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let rec sum k acc =
    if k > cfg.max_faults || k > t then acc else sum (k + 1) (acc + (binom t k * pow g k))
  in
  sum 0 0

let run ?monitors ?interleave ?inputs ?config ?(stop = fun () -> false)
    (sys : Model.System.t) =
  let cfg = match config with Some c -> c | None -> default_config sys in
  let space = space_size sys cfg in
  let examined = ref 0 in
  let step_budget_hits = ref 0 in
  let monitor_truncations = ref 0 in
  let undelivered_crashes = ref 0 in
  let undelivered_net = ref 0 in
  let vacuous = ref 0 in
  let rec scan seq =
    match seq () with
    | Seq.Nil -> None, false, false
    | Seq.Cons (schedule, rest) ->
      if stop () then None, false, true
      else if !examined >= cfg.budget then None, true, false
      else begin
        incr examined;
        let r =
          Runner.run ?monitors ?interleave ?inputs ~max_steps:cfg.max_steps ~schedule sys
        in
        monitor_truncations := !monitor_truncations + List.length r.Runner.monitor_truncations;
        undelivered_crashes := !undelivered_crashes + r.Runner.undelivered_crashes;
        undelivered_net := !undelivered_net + r.Runner.undelivered_net;
        vacuous := !vacuous + r.Runner.vacuous_net_faults;
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          Some
            { schedule; monitor; reason; proven; exec = r.Runner.exec;
              steps = r.Runner.steps;
              degraded_to = degraded_to_of cfg sys r.Runner.exec },
          false, false
        | Runner.Lasso _ | Runner.Pruned -> scan rest
        | Runner.Budget ->
          incr step_budget_hits;
          scan rest
      end
  in
  let violation, truncated, wall_truncated = scan (schedules sys cfg) in
  {
    examined = !examined;
    space;
    truncated;
    wall_truncated;
    step_budget_hits = !step_budget_hits;
    monitor_truncations = !monitor_truncations;
    undelivered_crashes = !undelivered_crashes;
    undelivered_net = !undelivered_net;
    vacuous_net_faults = !vacuous;
    dedup_hits = 0;
    static_prunes = 0;
    por_prunes = 0;
    violation;
  }

(* --- parallel exploration --- *)

type run_record = {
  rank : int;
  budget_hit : bool;
  truncations : int;
  undelivered : int;
  undelivered_n : int;
  vacuous : int;
  deduped : bool;
  statically_pruned : bool;
  por_pruned : bool;
  found : violation option;
}

type partial = run_record list

let compare_found v1 v2 =
  let c = Schedule.compare v1.schedule v2.schedule in
  if c <> 0 then c
  else
    let c = String.compare v1.monitor v2.monitor in
    if c <> 0 then c
    else
      let c = String.compare v1.reason v2.reason in
      if c <> 0 then c else Bool.compare v1.proven v2.proven

let merge ?(wall = false) ~space ~scheduled partials =
  let records = List.concat partials in
  (* The winner is the enumeration-least violation: minimal rank, then the
     lexicographically least schedule. A pure function of the record
     multiset, so merging is order- and partition-insensitive. *)
  let winner =
    List.fold_left
      (fun best r ->
        match r.found with
        | None -> best
        | Some v -> (
          match best with
          | None -> Some (r.rank, v)
          | Some (br, bv) ->
            if r.rank < br || (r.rank = br && compare_found v bv < 0) then Some (r.rank, v)
            else best))
      None records
  in
  (* Sequential semantics stop scanning at the first violation: counters
     beyond the winning rank are not part of the report. *)
  let keep r = match winner with None -> true | Some (br, _) -> r.rank <= br in
  let kept = List.filter keep records in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 kept in
  let wall_truncated = wall && winner = None in
  {
    examined =
      (match winner with
      | Some (br, _) -> br + 1
      | None -> if wall_truncated then List.length records else scheduled);
    space;
    truncated = (not wall_truncated) && winner = None && scheduled < space;
    wall_truncated;
    step_budget_hits = sum (fun r -> if r.budget_hit then 1 else 0);
    monitor_truncations = sum (fun r -> r.truncations);
    undelivered_crashes = sum (fun r -> r.undelivered);
    undelivered_net = sum (fun r -> r.undelivered_n);
    vacuous_net_faults = sum (fun r -> r.vacuous);
    dedup_hits = sum (fun r -> if r.deduped then 1 else 0);
    static_prunes = sum (fun r -> if r.statically_pruned then 1 else 0);
    por_prunes = sum (fun r -> if r.por_pruned then 1 else 0);
    violation = Option.map snd winner;
  }

(* A mutex-guarded deque of contiguous rank ranges per worker. The owner
   takes single ranks from the front; thieves split the back range in half
   (or take it whole), classic work-stealing shape. Correctness does not
   depend on who runs what: the merge is deterministic either way. *)
type deque = { mutable ranges : (int * int) list; lock : Mutex.t }

let deque ranges = { ranges; lock = Mutex.create () }

let locked d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let next_rank d =
  locked d (fun () ->
      match d.ranges with
      | [] -> None
      | (lo, hi) :: rest ->
        d.ranges <- (if lo + 1 < hi then (lo + 1, hi) :: rest else rest);
        Some lo)

let steal d =
  locked d (fun () ->
      match List.rev d.ranges with
      | [] -> None
      | (lo, hi) :: rev_rest ->
        if hi - lo >= 2 then begin
          let mid = (lo + hi) / 2 in
          d.ranges <- List.rev ((lo, mid) :: rev_rest);
          Some (mid, hi)
        end
        else begin
          d.ranges <- List.rev rev_rest;
          Some (lo, hi)
        end)

let push_front d range = locked d (fun () -> d.ranges <- range :: d.ranges)

let rec note_best best rank =
  let cur = Atomic.get best in
  if rank < cur && not (Atomic.compare_and_set best cur rank) then note_best best rank

(* --- partial-order reduction over crash placements ---

   Two schedules are equivalent when one is obtained from the other by
   sliding a crash delivery one grid notch earlier past task slots that are
   statically crash-independent ({!Analysis.Interfere.crash_interferes}):
   the slid-past tasks cannot observe the pid's crash bit, so both runs
   execute the same task slots with the same outcomes, reach the same
   configuration once the window closes, and the compiled schedules agree
   from there on — the verdicts coincide. The enumeration orders schedules
   lexicographically by crash step, so the earliest-crash form of every
   equivalence class has the least rank: a schedule from which some crash
   can still slide earlier is non-canonical and is skipped, its verdict
   represented by the lower-ranked form. Violating schedules are never the
   skipped side (their canonical form violates too, at lower rank), so the
   rank-least merged violation — and with it [examined] and [truncated] —
   matches the unreduced oracle exactly. *)

let por_crash_dep cfg (sys : Model.System.t) =
  (* dep.(pid).(task index): the task may observe pid's crash bit. The
     footprints are sharpened by the exploration's own fault bound. *)
  let inter = Analysis.Interfere.analyze ~max_crashes:cfg.max_faults sys in
  Array.init (Model.System.n_processes sys) (fun pid ->
      Array.map
        (fun tk -> Analysis.Interfere.crash_interferes inter ~pid tk)
        sys.Model.System.tasks)

let por_prunable ~dep ~stride ~n_tasks (s : Schedule.t) =
  (* Only the enumeration's own shape is eligible (crash-only, silencing
     default, no overrides) — same convention as the static-prune oracle. *)
  s.Schedule.overrides = []
  && s.Schedule.default_pref = Model.System.Prefer_dummy
  (* Crash-only: the sliding argument covers crash deliveries alone. Every
     network fault kind is explicitly excluded — a drop/dup/delay mutates a
     buffer whose content depends on the exact slot, and partitions gate
     task enabledness, so no independence footprint covers them (tested in
     test_chaos_net.ml). *)
  && Schedule.is_crash_only s
  &&
  (* Walk the crashes in delivery order (d_k = max(t_k, d_{k-1}+1)); crash k
     can slide from step t to t - stride iff the window stays clear of other
     deliveries (prev delivered strictly before t - stride, next scheduled
     strictly after t) and every task slot in [t - stride, t) — cursor u - k,
     k deliveries having happened — ignores the pid's crash bit. *)
  let rec scan k prev_delivery = function
    | [] -> false
    | (t, pid) :: rest ->
      let movable =
        prev_delivery < t - stride
        && (match rest with [] -> true | (t', _) :: _ -> t' > t)
        &&
        let ok = ref true in
        for u = t - stride to t - 1 do
          if dep.(pid).((u - k) mod n_tasks) then ok := false
        done;
        !ok
      in
      movable || scan (k + 1) (max t (prev_delivery + 1)) rest
  in
  scan 0 (-1) (Schedule.crashes s)

let run_par ?monitors ?interleave ?inputs ?config ?(domains = 1) ?(dedup = true)
    ?(static_prune = false) ?(por = false) ?(stop = fun () -> false)
    (sys : Model.System.t) =
  let cfg = match config with Some c -> c | None -> default_config sys in
  let space = space_size sys cfg in
  let candidates = Array.of_seq (Seq.take (max 0 cfg.budget) (schedules sys cfg)) in
  let scheduled = Array.length candidates in
  let quiescence =
    (* The abstract-interpretation infeasibility oracle: a certified step Q
       from which every crash-only silencing schedule provably ends in a
       clean lasso with all crashes delivered. Engaged only under the exact
       convention the certificate covers — default monitors, round-robin
       interleaving — and only when the step budget provably accommodates
       the longest pruned run (activation + crash deliveries + one full
       silent cycle), so a concrete twin could never have hit [Budget]. *)
    if
      static_prune && monitors = None
      && (match interleave with Some (Runner.Seeded _) -> false | _ -> true)
      && cfg.horizon + cfg.max_faults + Array.length sys.Model.System.tasks + 2
         <= cfg.max_steps
    then
      Analysis.Prune.clean_from ~max_faults:cfg.max_faults
        ~inputs:(match inputs with Some l -> l | None -> Runner.default_inputs sys)
        ~horizon:cfg.horizon sys
    else None
  in
  let por_dep =
    (* Engaged under the same convention as the quiescence oracle: default
       monitors (the swap argument needs monitors blind to crash events),
       deterministic round-robin interleaving, and a step budget that
       provably accommodates the longest pruned run. *)
    if
      por && monitors = None
      && (match interleave with Some (Runner.Seeded _) -> false | _ -> true)
      && cfg.horizon + cfg.max_faults + Array.length sys.Model.System.tasks + 2
         <= cfg.max_steps
    then Some (por_crash_dep cfg sys)
    else None
  in
  let n_tasks = Array.length sys.Model.System.tasks in
  let por_prunable_schedule s =
    match por_dep with
    | Some dep -> por_prunable ~dep ~stride:cfg.stride ~n_tasks s
    | None -> false
  in
  let prunable (s : Schedule.t) =
    match quiescence with
    | None -> false
    | Some q ->
      (* Crash-only silencing schedules with every crash at or past Q; the
         empty schedule is never pruned (it has rank 0, and concrete prefix
         violations must keep dominating the rank-least merge). *)
      s.Schedule.overrides = []
      && s.Schedule.default_pref = Model.System.Prefer_dummy
      && s.Schedule.faults <> []
      && List.for_all
           (function
             | Schedule.Crash { step; _ } -> step >= q
             (* The certificate covers crash-only schedules; every other
                fault kind disqualifies (explicitly, with a test). *)
             | Schedule.Silence _ | Schedule.Drop _ | Schedule.Duplicate _
             | Schedule.Delay _ | Schedule.Partition _ -> false)
           s.Schedule.faults
  in
  (* Clamp the spawned workers to the machine: oversubscribing domains past
     the core count makes every minor-collection barrier pay cross-thread
     scheduling latency (each stop-the-world must wait for descheduled
     domains to reach a safepoint). The merge is partition-insensitive, so
     the report is identical whatever the effective worker count. *)
  let domains =
    max 1 (min (min domains (Domain.recommended_domain_count ())) (max 1 scheduled))
  in
  let dedup =
    (* Sound only under the deterministic round-robin interleaving. *)
    dedup && match interleave with Some (Runner.Seeded _) -> false | _ -> true
  in
  let prefix =
    (* The shared fault-free stem: every enumerated candidate is crash-only
       under the silencing adversary, so all of them replay this prefix up
       to their first crash. Built once, read-only across domains. *)
    match interleave with
    | Some (Runner.Seeded _) -> None
    | _ when scheduled = 0 -> None
    | _ ->
      Some
        (Runner.prefix ?monitors ?inputs ~max_steps:cfg.max_steps
           ~steps:(min (max 0 (cfg.horizon - 1)) cfg.max_steps)
           sys)
  in
  let visited = Fingerprint.Visited.create () in
  let best = Atomic.make max_int in
  let outstanding = Atomic.make scheduled in
  let chunk = if scheduled = 0 then 1 else (scheduled + domains - 1) / domains in
  let deques =
    Array.init domains (fun w ->
        let lo = w * chunk and hi = min scheduled ((w + 1) * chunk) in
        deque (if lo < hi then [ (lo, hi) ] else []))
  in
  let run_one rank records =
    (* Ranks at or past the best violating rank cannot affect the merged
       report; skipping them is the early-exit that makes the search stop. *)
    if rank < Atomic.get best then begin
      let schedule = candidates.(rank) in
      if prunable schedule then
        (* Proven clean lasso: all crashes delivered, no truncations, no
           violation — exactly what the concrete run would have recorded. *)
        records :=
          {
            rank;
            budget_hit = false;
            truncations = 0;
            undelivered = 0;
            undelivered_n = 0;
            vacuous = 0;
            deduped = false;
            statically_pruned = true;
            por_pruned = false;
            found = None;
          }
          :: !records
      else if por_prunable_schedule schedule then
        (* Non-canonical: a crash slides earlier past provably independent
           task slots, so a lower-ranked equivalent schedule reproduces this
           run's verdict. Kept records at ranks ≤ the winner are clean (a
           violating schedule's canonical form wins first), all crashes
           delivered within the horizon, no truncations. *)
        records :=
          {
            rank;
            budget_hit = false;
            truncations = 0;
            undelivered = 0;
            undelivered_n = 0;
            vacuous = 0;
            deduped = false;
            statically_pruned = false;
            por_pruned = true;
            found = None;
          }
          :: !records
      else begin
      let keyed = ref None in
      let on_active =
        if dedup then
          Some
            (fun ~step ~cursor exec ->
              let key = Fingerprint.key ~cursor exec in
              match Fingerprint.Visited.find visited key with
              | Some suffix when step + suffix <= cfg.max_steps -> `Prune
              | _ ->
                keyed := Some (key, step);
                `Continue)
        else None
      in
      let r =
        Runner.run ?monitors ?interleave ?inputs ~max_steps:cfg.max_steps ?on_active
          ?prefix ~schedule sys
      in
      let base =
        {
          rank;
          budget_hit = false;
          truncations = List.length r.Runner.monitor_truncations;
          undelivered = r.Runner.undelivered_crashes;
          undelivered_n = r.Runner.undelivered_net;
          vacuous = r.Runner.vacuous_net_faults;
          deduped = false;
          statically_pruned = false;
          por_pruned = false;
          found = None;
        }
      in
      let record =
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          note_best best rank;
          {
            base with
            found =
              Some
                { schedule; monitor; reason; proven; exec = r.Runner.exec;
                  steps = r.Runner.steps;
                  degraded_to = degraded_to_of cfg sys r.Runner.exec };
          }
        | Runner.Lasso _ ->
          (* Only proven-quiescent clean runs seed the visited table: a
             pruned twin would provably replay this suffix to the same
             verdict (its step budget permitting — hence the suffix guard
             above). Budget-bounded clean runs are never recorded, so a
             cutoff at a different point can never be inherited. *)
          (match !keyed with
          | Some (key, act) ->
            Fingerprint.Visited.add visited key ~suffix_steps:(r.Runner.steps - act)
          | None -> ());
          base
        | Runner.Budget -> { base with budget_hit = true }
        | Runner.Pruned -> { base with deduped = true }
      in
      records := record :: !records
      end
    end
  in
  let wall_stopped = Atomic.make false in
  let worker w () =
    let records = ref [] in
    let my = deques.(w) in
    let poison e =
      (* Let the sibling workers drain and exit instead of spinning on a
         counter that will never reach zero; the exception resurfaces at
         [Domain.join] (or directly, for worker 0). *)
      Atomic.set outstanding 0;
      raise e
    in
    let rec scavenge v =
      if v >= domains then None
      else
        match steal deques.((w + 1 + v) mod domains) with
        | Some range -> Some range
        | None -> scavenge (v + 1)
    in
    let rec loop () =
      if Atomic.get wall_stopped then ()
      else if stop () then
        (* Wall-clock budget expired: every worker drains on its next poll;
           the partial records merge into a wall-truncated report. *)
        Atomic.set wall_stopped true
      else if Atomic.get outstanding > 0 then begin
        (match next_rank my with
        | Some rank ->
          (try run_one rank records with e -> poison e);
          Atomic.decr outstanding
        | None -> (
          match scavenge 0 with
          | Some range -> push_front my range
          | None -> Domain.cpu_relax ()));
        loop ()
      end
    in
    loop ();
    !records
  in
  let spawned = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) ())) in
  let mine = worker 0 () in
  let partials = mine :: Array.to_list (Array.map Domain.join spawned) in
  merge ~wall:(Atomic.get wall_stopped) ~space ~scheduled partials

let pp_report ppf r =
  Format.fprintf ppf "@[<v>examined %d of %d candidate fault schedule(s)%s%s@," r.examined
    r.space
    (if r.truncated then " — TRUNCATED: enumeration budget hit before exhausting the space"
     else "")
    (if r.wall_truncated then " — truncated: wall-clock" else "");
  if r.dedup_hits > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by configuration fingerprint (verdict inherited from an \
       equivalent run)@,"
      r.dedup_hits;
  if r.static_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) statically pruned (proven clean by abstract interpretation, never \
       executed)@,"
      r.static_prunes;
  if r.por_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by partial-order reduction (crash placement equivalent to a \
       lower-ranked schedule, verdict inherited)@,"
      r.por_prunes;
  if r.step_budget_hits > 0 then
    Format.fprintf ppf
      "%d run(s) hit the step budget undecided — liveness verdicts there are bounded evidence only@,"
      r.step_budget_hits;
  if r.monitor_truncations > 0 then
    Format.fprintf ppf "%d monitor check(s) truncated (see per-run reports)@,"
      r.monitor_truncations;
  if r.undelivered_crashes > 0 then
    Format.fprintf ppf "%d scheduled crash(es) fell beyond the executed step range@,"
      r.undelivered_crashes;
  if r.undelivered_net > 0 then
    Format.fprintf ppf "%d scheduled network fault(s) fell beyond the executed step range@,"
      r.undelivered_net;
  if r.vacuous_net_faults > 0 then
    Format.fprintf ppf "%d delivered network fault(s) were vacuous (empty buffer)@,"
      r.vacuous_net_faults;
  (match r.violation with
  | Some v -> Format.fprintf ppf "%a@]" pp_violation v
  | None -> Format.fprintf ppf "no violation found@]")
