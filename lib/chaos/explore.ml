type config = {
  max_faults : int;
  horizon : int;
  stride : int;
  budget : int;
  max_steps : int;
  kinds : Schedule.kind list;
  degrade : bool;
}

let default_config (sys : Model.System.t) =
  {
    max_faults = 1;
    horizon = 2 * Array.length sys.Model.System.tasks;
    stride = 1;
    budget = 1_024;
    max_steps = 20_000;
    kinds = [ Schedule.Crash_k ];
    degrade = false;
  }

type violation = {
  schedule : Schedule.t;
  monitor : string;
  reason : string;
  proven : bool;
  exec : Model.Exec.t;
  steps : int;
  degraded_to : string option;
}

let degraded_to_of cfg sys exec =
  if cfg.degrade then Some (Degrade.describe sys exec) else None

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>%s violated (%s) under schedule [%a]:@,%s@]" v.monitor
    (if v.proven then "proven" else "bounded evidence")
    Schedule.pp v.schedule v.reason;
  match v.degraded_to with
  | None -> ()
  | Some vec -> Format.fprintf ppf "@,degraded to %s" vec

type report = {
  examined : int;
  space : int;
  truncated : bool;
  wall_truncated : bool;
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  undelivered_net : int;
  vacuous_net_faults : int;
  dedup_hits : int;
  static_prunes : int;
  por_prunes : int;
  violation : violation option;
}

let grid cfg = List.init ((cfg.horizon + cfg.stride - 1) / cfg.stride) (fun i -> i * cfg.stride)

let rec choose k lst =
  (* k-subsets of [lst], lexicographic, as a lazy sequence. *)
  if k = 0 then Seq.return []
  else
    match lst with
    | [] -> Seq.empty
    | x :: rest ->
      Seq.append
        (Seq.map (fun c -> x :: c) (choose (k - 1) rest))
        (fun () -> choose k rest ())

let rec tuples k points =
  (* k-tuples over [points] (crash steps per chosen pid), lexicographic. *)
  if k = 0 then Seq.return []
  else
    Seq.flat_map
      (fun tl -> Seq.map (fun p -> p :: tl) (List.to_seq points))
      (fun () -> tuples (k - 1) points ())

(* Fault-site templates: one per (kind, target) pair; the step grid
   instantiates them. Crash templates come first, in pid order, so with
   [kinds = [Crash_k]] the candidate stream is exactly the crash-only
   enumeration of the earlier engine — the invariant the pinned differential
   in test_chaos_net.ml protects. *)
let templates (sys : Model.System.t) cfg =
  let n = Model.System.n_processes sys in
  let service_endpoints =
    Array.to_list sys.Model.System.services
    |> List.concat_map (fun (c : Model.Service.t) ->
           List.map
             (fun ep -> c.Model.Service.id, ep)
             (Array.to_list c.Model.Service.endpoints))
  in
  let heal_of step = step + max 1 (cfg.horizon / 2) in
  List.concat_map
    (function
      | Schedule.Crash_k -> List.init n (fun pid step -> Schedule.crash ~step ~pid)
      | Schedule.Silence_k ->
        Array.to_list sys.Model.System.services
        |> List.map (fun (c : Model.Service.t) step ->
               Schedule.silence ~step ~service:c.Model.Service.id)
      | Schedule.Drop_k ->
        List.map
          (fun (service, endpoint) step -> Schedule.drop ~step ~service ~endpoint)
          service_endpoints
      | Schedule.Dup_k ->
        List.map
          (fun (service, endpoint) step -> Schedule.duplicate ~step ~service ~endpoint)
          service_endpoints
      | Schedule.Delay_k ->
        List.map
          (fun (service, endpoint) step -> Schedule.delay ~step ~service ~endpoint ~lag:1)
          service_endpoints
      | Schedule.Partition_k ->
        (* Isolate-one-pid splits — the coarsest §6.3-meaningful partitions;
           finer block structures are reachable by stacking several. Heal at
           half a horizon later, so degradation is graceful within the
           explored window. *)
        if n < 2 then []
        else
          List.init n (fun pid step ->
              Schedule.partition ~step ~blocks:[ [ pid ] ] ~heal_at:(heal_of step)))
    cfg.kinds

let schedules sys cfg =
  let points = grid cfg in
  let tmpls = templates sys cfg in
  let of_size k =
    Seq.flat_map
      (fun subset ->
        Seq.map
          (fun steps ->
            Schedule.make (List.map2 (fun tmpl step -> tmpl step) subset (List.rev steps)))
          (tuples k points))
      (choose k tmpls)
  in
  Seq.flat_map of_size (Seq.init (cfg.max_faults + 1) Fun.id)

let space_size sys cfg =
  let g = List.length (grid cfg) in
  let t = List.length (templates sys cfg) in
  let rec binom n k = if k = 0 || k = n then 1 else binom (n - 1) (k - 1) + binom (n - 1) k in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let rec sum k acc =
    if k > cfg.max_faults || k > t then acc else sum (k + 1) (acc + (binom t k * pow g k))
  in
  sum 0 0

(* Callers that pass no monitors get the default family matching the
   config's degrade flag, so `--degrade` composes with the static oracles:
   the oracles engage whenever the caller supplied nothing custom, and the
   degrade-aware verdict sensitivity (partition state at decide events) is
   encoded in the POR dependence instead of disengaging the reduction. *)
let effective_monitors cfg = function
  | Some ms -> ms
  | None -> Monitor.defaults ~degrade:cfg.degrade ()

let run ?monitors ?interleave ?inputs ?config ?(stop = fun () -> false)
    (sys : Model.System.t) =
  let cfg = match config with Some c -> c | None -> default_config sys in
  let monitors = effective_monitors cfg monitors in
  let space = space_size sys cfg in
  let examined = ref 0 in
  let step_budget_hits = ref 0 in
  let monitor_truncations = ref 0 in
  let undelivered_crashes = ref 0 in
  let undelivered_net = ref 0 in
  let vacuous = ref 0 in
  let rec scan seq =
    match seq () with
    | Seq.Nil -> None, false, false
    | Seq.Cons (schedule, rest) ->
      if stop () then None, false, true
      else if !examined >= cfg.budget then None, true, false
      else begin
        incr examined;
        let r =
          Runner.run ~monitors ?interleave ?inputs ~max_steps:cfg.max_steps ~schedule sys
        in
        monitor_truncations := !monitor_truncations + List.length r.Runner.monitor_truncations;
        undelivered_crashes := !undelivered_crashes + r.Runner.undelivered_crashes;
        undelivered_net := !undelivered_net + r.Runner.undelivered_net;
        vacuous := !vacuous + r.Runner.vacuous_net_faults;
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          Some
            { schedule; monitor; reason; proven; exec = r.Runner.exec;
              steps = r.Runner.steps;
              degraded_to = degraded_to_of cfg sys r.Runner.exec },
          false, false
        | Runner.Lasso _ | Runner.Pruned -> scan rest
        | Runner.Budget ->
          incr step_budget_hits;
          scan rest
      end
  in
  let violation, truncated, wall_truncated = scan (schedules sys cfg) in
  {
    examined = !examined;
    space;
    truncated;
    wall_truncated;
    step_budget_hits = !step_budget_hits;
    monitor_truncations = !monitor_truncations;
    undelivered_crashes = !undelivered_crashes;
    undelivered_net = !undelivered_net;
    vacuous_net_faults = !vacuous;
    dedup_hits = 0;
    static_prunes = 0;
    por_prunes = 0;
    violation;
  }

(* --- parallel exploration --- *)

type run_record = {
  rank : int;
  budget_hit : bool;
  truncations : int;
  undelivered : int;
  undelivered_n : int;
  vacuous : int;
  deduped : bool;
  statically_pruned : bool;
  por_pruned : bool;
  parent : int option;
  found : violation option;
}

type partial = run_record list

let compare_found v1 v2 =
  let c = Schedule.compare v1.schedule v2.schedule in
  if c <> 0 then c
  else
    let c = String.compare v1.monitor v2.monitor in
    if c <> 0 then c
    else
      let c = String.compare v1.reason v2.reason in
      if c <> 0 then c else Bool.compare v1.proven v2.proven

let merge ?(wall = false) ~space ~scheduled partials =
  let records = List.concat partials in
  (* The winner is the enumeration-least violation: minimal rank, then the
     lexicographically least schedule. A pure function of the record
     multiset, so merging is order- and partition-insensitive. *)
  let winner =
    List.fold_left
      (fun best r ->
        match r.found with
        | None -> best
        | Some v -> (
          match best with
          | None -> Some (r.rank, v)
          | Some (br, bv) ->
            if r.rank < br || (r.rank = br && compare_found v bv < 0) then Some (r.rank, v)
            else best))
      None records
  in
  (* Sequential semantics stop scanning at the first violation: counters
     beyond the winning rank are not part of the report. *)
  let keep r = match winner with None -> true | Some (br, _) -> r.rank <= br in
  let kept = List.filter keep records in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 kept in
  let wall_truncated = wall && winner = None in
  {
    examined =
      (match winner with
      | Some (br, _) -> br + 1
      | None -> if wall_truncated then List.length records else scheduled);
    space;
    truncated = (not wall_truncated) && winner = None && scheduled < space;
    wall_truncated;
    step_budget_hits = sum (fun r -> if r.budget_hit then 1 else 0);
    monitor_truncations = sum (fun r -> r.truncations);
    undelivered_crashes = sum (fun r -> r.undelivered);
    undelivered_net = sum (fun r -> r.undelivered_n);
    vacuous_net_faults = sum (fun r -> r.vacuous);
    dedup_hits = sum (fun r -> if r.deduped then 1 else 0);
    static_prunes = sum (fun r -> if r.statically_pruned then 1 else 0);
    por_prunes = sum (fun r -> if r.por_pruned then 1 else 0);
    violation = Option.map snd winner;
  }

(* A mutex-guarded deque of contiguous rank ranges per worker. The owner
   takes single ranks from the front; thieves split the back range in half
   (or take it whole), classic work-stealing shape. Correctness does not
   depend on who runs what: the merge is deterministic either way. *)
type deque = { mutable ranges : (int * int) list; lock : Mutex.t }

let deque ranges = { ranges; lock = Mutex.create () }

let locked d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let next_rank d =
  locked d (fun () ->
      match d.ranges with
      | [] -> None
      | (lo, hi) :: rest ->
        d.ranges <- (if lo + 1 < hi then (lo + 1, hi) :: rest else rest);
        Some lo)

let steal d =
  locked d (fun () ->
      match List.rev d.ranges with
      | [] -> None
      | (lo, hi) :: rev_rest ->
        if hi - lo >= 2 then begin
          let mid = (lo + hi) / 2 in
          d.ranges <- List.rev ((lo, mid) :: rev_rest);
          Some (mid, hi)
        end
        else begin
          d.ranges <- List.rev rev_rest;
          Some (lo, hi)
        end)

let push_front d range = locked d (fun () -> d.ranges <- range :: d.ranges)

let rec note_best best rank =
  let cur = Atomic.get best in
  if rank < cur && not (Atomic.compare_and_set best cur rank) then note_best best rank

(* --- partial-order reduction over fault placements ---

   Two schedules are equivalent when one is obtained from the other by
   sliding a fault delivery one grid notch earlier past task slots that are
   statically independent of it: crashes slide past tasks blind to the pid's
   crash bit ({!Analysis.Interfere.crash_interferes}), omission deliveries
   (drop/dup/delay) past tasks not touching their target response buffer,
   and topology changes (a partition's begin and synthesized heal — both
   slide together) past tasks whose [blocked] gate never consults the
   partition state ({!Analysis.Interfere.net_interferes}, DESIGN.md §3.12).
   The slid-past tasks neither observe nor disturb the delivery's footprint,
   so both runs execute the same task slots with the same outcomes, reach
   the same configuration once the window closes, and the compiled schedules
   agree from there on — the verdicts coincide. The enumeration orders
   schedules lexicographically by fault step, so the earliest-delivery form
   of every equivalence class has the least rank: a schedule from which some
   fault can still slide is non-canonical and is skipped, its verdict
   inherited from the lower-ranked form. Violating schedules are never the
   skipped side (their canonical form violates too, at lower rank), so the
   rank-least merged violation — and with it [examined] and [truncated] —
   matches the unreduced oracle exactly; the remaining counters are copied
   from the parent record after the workers join.

   Two refinements keep the sliding sound beyond the crash-only case:

   - When the schedule contains any partition, window tasks additionally
     must not read the topology component at all: a window task executes
     one wall step later in the canonical form, and [Schedule.separated]
     is keyed on nominal wall steps, so a task straddling some OTHER
     partition's begin/heal boundary could change its blocked status.
     Topology-blind tasks cannot.

   - Under [degrade], the degraded-agreement monitor grades decide events
     by the partitions active at their wall step, so in partition-bearing
     schedules window tasks must also not write a decision. All other
     default monitors are placement-insensitive across a sound slide. *)

type por_ctx = {
  crash_dep : bool array array;  (* pid -> task index -> interferes *)
  omis_dep : ((int * int) * bool array) list;  (* (svc pos, endpoint pid) *)
  topo_dep : bool array;
  decide_dep : bool array;
  svc_pos : (string * int) list;
}

let por_deps ?cache cfg (sys : Model.System.t) =
  (* All dependence rows, precomputed eagerly (workers share this read-only;
     the footprints are sharpened by the exploration's own fault bound).
     Footprints are first-class cache entries (kind "fp", structural —
     no reach refinement here), so a warm --por run skips the whole
     derivation; the dependence rows are cheap bit tests over them. *)
  let inter =
    let compute () = Analysis.Interfere.analyze ~max_crashes:cfg.max_faults sys in
    match cache with
    | None -> compute ()
    | Some (c, prefix) -> (
      let key =
        Analysis.Cache.fp_key ~full_key:prefix ~max_crashes:cfg.max_faults
          ~refined:false
      in
      match
        Analysis.Cache.fp_find c ~key
          ~n_tasks:(Array.length sys.Model.System.tasks)
      with
      | Some fps -> Analysis.Interfere.of_footprints sys ~max_crashes:cfg.max_faults fps
      | None ->
        let itf = compute () in
        Analysis.Cache.fp_store c ~key
          (Array.map snd (Analysis.Interfere.footprints itf));
        itf)
  in
  let tasks = sys.Model.System.tasks in
  let crash_dep =
    Array.init (Model.System.n_processes sys) (fun pid ->
        Array.map (fun tk -> Analysis.Interfere.crash_interferes inter ~pid tk) tasks)
  in
  let svc_pos =
    Array.to_list sys.Model.System.services
    |> List.map (fun (c : Model.Service.t) ->
           c.Model.Service.id, Model.System.service_pos sys c.Model.Service.id)
  in
  let omis_dep =
    Array.to_list sys.Model.System.services
    |> List.concat_map (fun (c : Model.Service.t) ->
           let svc = Model.System.service_pos sys c.Model.Service.id in
           Array.to_list c.Model.Service.endpoints
           |> List.map (fun endpoint ->
                  ( (svc, endpoint),
                    Array.map
                      (fun tk ->
                        Analysis.Interfere.net_interferes inter
                          (Analysis.Footprint.Omission { svc; endpoint })
                          tk)
                      tasks )))
  in
  let topo_dep =
    Array.map
      (fun tk -> Analysis.Interfere.net_interferes inter Analysis.Footprint.Topology tk)
      tasks
  in
  let decide_dep =
    Array.map
      (fun tk ->
        let fp = Analysis.Interfere.footprint inter tk in
        Analysis.Footprint.Cset.exists
          (function Analysis.Footprint.Decision _ -> true | _ -> false)
          fp.Analysis.Footprint.writes)
      tasks
  in
  { crash_dep; omis_dep; topo_dep; decide_dep; svc_pos }

let slide_fault stride = function
  | Schedule.Crash { step; pid } -> Schedule.crash ~step:(step - stride) ~pid
  | Schedule.Drop { step; service; endpoint } ->
    Schedule.drop ~step:(step - stride) ~service ~endpoint
  | Schedule.Duplicate { step; service; endpoint } ->
    Schedule.duplicate ~step:(step - stride) ~service ~endpoint
  | Schedule.Delay { step; service; endpoint; lag } ->
    Schedule.delay ~step:(step - stride) ~service ~endpoint ~lag
  | Schedule.Partition { step; blocks; heal_at } ->
    (* Both deliveries slide, keeping the template's heal offset — the slid
       form is the same fault site instantiated one grid notch earlier. *)
    Schedule.partition ~step:(step - stride) ~blocks ~heal_at:(heal_at - stride)
  | Schedule.Silence _ -> invalid_arg "slide_fault: silence"

let por_slide ~ctx ~stride ~degrade ~max_steps ~n_tasks (s : Schedule.t) =
  (* Only the enumeration's own shape is eligible (silencing default, no
     overrides) — same convention as the static-prune oracle. Silences are
     excluded: a policy flip is keyed to fixed wall steps the slide would
     cross, and no footprint covers it. *)
  if
    s.Schedule.overrides <> []
    || s.Schedule.default_pref <> Model.System.Prefer_dummy
    || List.exists (function Schedule.Silence _ -> true | _ -> false) s.Schedule.faults
  then None
  else begin
    let faults = Array.of_list s.Schedule.faults in
    let has_partition =
      Array.exists (function Schedule.Partition _ -> true | _ -> false) faults
    in
    (* The delivery sequence, mirroring [Schedule.deliveries] exactly: one
       entry per crash/omission, a begin/heal pair per partition, stably
       sorted by nominal step. Actual delivery steps then bunch up one per
       step: d_k = max(nominal_k, d_{k-1}+1). *)
    let ds =
      Array.to_list faults
      |> List.mapi (fun fi f -> fi, f)
      |> List.concat_map (fun (fi, f) ->
             match f with
             | Schedule.Crash { step; _ }
             | Schedule.Drop { step; _ }
             | Schedule.Duplicate { step; _ }
             | Schedule.Delay { step; _ } -> [ step, fi ]
             | Schedule.Partition { step; heal_at; _ } -> [ step, fi; heal_at, fi ]
             | Schedule.Silence _ -> [])
      |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
      |> Array.of_list
    in
    let nd = Array.length ds in
    if nd = 0 then None
    else begin
      let actual = Array.make nd 0 in
      let prev = ref (-1) in
      Array.iteri
        (fun k (at, _) ->
          let d = max at (!prev + 1) in
          actual.(k) <- d;
          prev := d)
        ds;
      (* Every delivery — and with it every slide window — must land strictly
         inside the step budget, or the budget cut could fall between the two
         runs' windows and their counters diverge. (Implied by the engagement
         precondition for crash-only schedules; partitions heal half a
         horizon late, so it bites.) *)
      if actual.(nd - 1) >= max_steps then None
      else begin
        let dep_row fi =
          match faults.(fi) with
          | Schedule.Crash { pid; _ } -> ctx.crash_dep.(pid)
          | Schedule.Drop { service; endpoint; _ }
          | Schedule.Duplicate { service; endpoint; _ }
          | Schedule.Delay { service; endpoint; _ } ->
            List.assoc (List.assoc service ctx.svc_pos, endpoint) ctx.omis_dep
          | Schedule.Partition _ -> ctx.topo_dep
          | Schedule.Silence _ -> assert false
        in
        (* Delivery k can slide from nominal step [at] to [at - stride] iff
           the window stays clear of other deliveries (prev delivered
           strictly before at - stride, next scheduled strictly after at)
           and every task slot in [at - stride, at) — cursor u - k, k
           deliveries having happened — is independent of the fault (plus
           the partition refinements above). *)
        let window_clear k row =
          let at, _ = ds.(k) in
          at - stride >= 0
          && (k = 0 || actual.(k - 1) < at - stride)
          && (k + 1 >= nd || fst ds.(k + 1) > at)
          &&
          let ok = ref true in
          for u = at - stride to at - 1 do
            let i = (u - k) mod n_tasks in
            if
              row.(i)
              || (has_partition
                 && (ctx.topo_dep.(i) || (degrade && ctx.decide_dep.(i))))
            then ok := false
          done;
          !ok
        in
        let movable fi =
          let row = dep_row fi in
          let all = ref true and any = ref false in
          Array.iteri
            (fun k (_, fi') ->
              if fi' = fi then begin
                any := true;
                if not (window_clear k row) then all := false
              end)
            ds;
          !any && !all
        in
        let rec first fi =
          if fi >= Array.length faults then None
          else if movable fi then Some fi
          else first (fi + 1)
        in
        match first 0 with
        | None -> None
        | Some fi ->
          Some
            (Schedule.make
               (List.mapi
                  (fun i f -> if i = fi then slide_fault stride f else f)
                  (Array.to_list faults)))
      end
    end
  end

let run_par ?monitors ?interleave ?inputs ?config ?(domains = 1) ?(dedup = true)
    ?(static_prune = false) ?(por = false) ?cache ?record_sink
    ?(stop = fun () -> false) (sys : Model.System.t) =
  let cfg = match config with Some c -> c | None -> default_config sys in
  let space = space_size sys cfg in
  let candidates = Array.of_seq (Seq.take (max 0 cfg.budget) (schedules sys cfg)) in
  let scheduled = Array.length candidates in
  let n_tasks = Array.length sys.Model.System.tasks in
  (* The static oracles key on the caller NOT overriding the monitor family
     (their soundness arguments cover the defaults, degrade-aware or not);
     the runs themselves always get the effective family. *)
  let eff_monitors = effective_monitors cfg monitors in
  let quiescence =
    (* The abstract-interpretation infeasibility oracle: a certified step Q
       from which every silencing schedule whose faults all land at or past
       Q provably ends in a clean lasso with all faults delivered. Engaged
       only under the exact convention the certificate covers — default
       monitors, round-robin interleaving — and only when the step budget
       provably accommodates the longest pruned crash-only run (activation +
       crash deliveries + one full silent cycle), so a concrete twin could
       never have hit [Budget]; net-bearing schedules re-check their own
       delivery tail against the budget below. *)
    if
      static_prune && monitors = None
      && (match interleave with Some (Runner.Seeded _) -> false | _ -> true)
      && cfg.horizon + cfg.max_faults + n_tasks + 2 <= cfg.max_steps
    then begin
      let compute () =
        Analysis.Prune.clean_from ~max_faults:cfg.max_faults
          ~inputs:(match inputs with Some l -> l | None -> Runner.default_inputs sys)
          ~horizon:cfg.horizon sys
      in
      (* The certificate is one full Reach fixpoint; consult the persistent
         cache when the caller supplied one. Only default inputs are keyed
         (the CLI never overrides them); negative verdicts are cached too. *)
      match cache with
      | Some (c, prefix) when inputs = None -> (
        let key = Printf.sprintf "%s-mf%d-h%d-idef" prefix cfg.max_faults cfg.horizon in
        match Analysis.Cache.cert_find c ~key with
        | Some verdict -> verdict
        | None ->
          let v = compute () in
          Analysis.Cache.cert_store c ~key v;
          v)
      | _ -> compute ()
    end
    else None
  in
  let por_dep =
    (* Engaged under the same convention as the quiescence oracle: default
       monitors (the swap argument needs monitors whose placement
       sensitivity the dependence rows encode), deterministic round-robin
       interleaving, and a step budget that provably accommodates the
       longest pruned crash-only run ([por_slide] re-checks net-bearing
       delivery tails per schedule). *)
    if
      por && monitors = None
      && (match interleave with Some (Runner.Seeded _) -> false | _ -> true)
      && cfg.horizon + cfg.max_faults + n_tasks + 2 <= cfg.max_steps
    then Some (por_deps ?cache cfg sys)
    else None
  in
  let rank_of =
    (* Enumeration rank by printed schedule, for resolving a slid parent to
       the record whose counters the pruned twin inherits. Sliding any fault
       one grid notch earlier strictly lowers the enumeration rank, so every
       parent of a scheduled candidate is itself scheduled. *)
    match por_dep with
    | None -> None
    | Some _ ->
      let h = Hashtbl.create (max 16 (2 * scheduled)) in
      Array.iteri (fun i s -> Hashtbl.replace h (Schedule.to_string s) i) candidates;
      Some h
  in
  let por_parent schedule =
    match por_dep, rank_of with
    | Some ctx, Some ranks -> (
      match
        por_slide ~ctx ~stride:cfg.stride ~degrade:cfg.degrade ~max_steps:cfg.max_steps
          ~n_tasks schedule
      with
      | None -> None
      | Some parent -> Hashtbl.find_opt ranks (Schedule.to_string parent))
    | _ -> None
  in
  let prunable (s : Schedule.t) =
    match quiescence with
    | None -> false
    | Some cert ->
      let q = cert.Analysis.Prune.quiescent_from in
      (* Silencing schedules with every fault at or past Q; the empty
         schedule is never pruned (it has rank 0, and concrete prefix
         violations must keep dominating the rank-least merge). Net faults
         additionally need the empty-buffer certificate (post-Q omissions
         provably vacuous, partitions never blocking) and a step budget
         that provably absorbs their delivery tail plus one silent cycle —
         a partition heals half a horizon past its begin, beyond what the
         engagement precondition covers for crashes. *)
      s.Schedule.overrides = []
      && s.Schedule.default_pref = Model.System.Prefer_dummy
      && s.Schedule.faults <> []
      && List.for_all
           (function
             | Schedule.Crash { step; _ } -> step >= q
             | Schedule.Drop { step; _ } | Schedule.Duplicate { step; _ }
             | Schedule.Delay { step; _ } | Schedule.Partition { step; _ } ->
               cert.Analysis.Prune.buffers_empty && step >= q
             (* A silence flips the adversary's policy, outside what the
                certificate's frozen-state closure covers. *)
             | Schedule.Silence _ -> false)
           s.Schedule.faults
      && (Schedule.is_crash_only s
         ||
         let last, count =
           List.fold_left
             (fun (last, count) f ->
               match f with
               | Schedule.Partition { heal_at; _ } -> max last heal_at, count + 2
               | Schedule.Crash { step; _ }
               | Schedule.Drop { step; _ }
               | Schedule.Duplicate { step; _ }
               | Schedule.Delay { step; _ }
               | Schedule.Silence { step; _ } -> max last step, count + 1)
             (0, 0) s.Schedule.faults
         in
         last + count + n_tasks + 2 <= cfg.max_steps)
  in
  (* Clamp the spawned workers to the machine: oversubscribing domains past
     the core count makes every minor-collection barrier pay cross-thread
     scheduling latency (each stop-the-world must wait for descheduled
     domains to reach a safepoint). The merge is partition-insensitive, so
     the report is identical whatever the effective worker count. *)
  let domains =
    max 1 (min (min domains (Domain.recommended_domain_count ())) (max 1 scheduled))
  in
  let dedup =
    (* Sound only under the deterministic round-robin interleaving. *)
    dedup && match interleave with Some (Runner.Seeded _) -> false | _ -> true
  in
  let prefix =
    (* The shared fault-free stem: every crash-only candidate under the
       silencing adversary replays this prefix up to its first crash
       (net-bearing candidates run whole; {!Runner.resumable} gates). Built
       once, read-only across domains. *)
    match interleave with
    | Some (Runner.Seeded _) -> None
    | _ when scheduled = 0 -> None
    | _ ->
      Some
        (Runner.prefix ~monitors:eff_monitors ?inputs ~max_steps:cfg.max_steps
           ~steps:(min (max 0 (cfg.horizon - 1)) cfg.max_steps)
           sys)
  in
  let visited = Fingerprint.Visited.create () in
  let best = Atomic.make max_int in
  let outstanding = Atomic.make scheduled in
  let chunk = if scheduled = 0 then 1 else (scheduled + domains - 1) / domains in
  let deques =
    Array.init domains (fun w ->
        let lo = w * chunk and hi = min scheduled ((w + 1) * chunk) in
        deque (if lo < hi then [ (lo, hi) ] else []))
  in
  let run_one rank records =
    (* Ranks at or past the best violating rank cannot affect the merged
       report; skipping them is the early-exit that makes the search stop. *)
    if rank < Atomic.get best then begin
      let schedule = candidates.(rank) in
      if prunable schedule then begin
        (* Proven clean lasso: all faults delivered, no violation — exactly
           what the concrete run would have recorded. Post-Q omissions land
           on certified-empty buffers, hence the analytic vacuous count; a
           net-bearing pruned run's monitor truncations equal the fault-free
           (rank 0) run's — same histories, no net events — and are copied
           from that record once the workers join. *)
        let crash_only = Schedule.is_crash_only schedule in
        let omissions =
          List.length
            (List.filter
               (function
                 | Schedule.Drop _ | Schedule.Duplicate _ | Schedule.Delay _ -> true
                 | _ -> false)
               schedule.Schedule.faults)
        in
        records :=
          {
            rank;
            budget_hit = false;
            truncations = 0;
            undelivered = 0;
            undelivered_n = 0;
            vacuous = (if crash_only then 0 else omissions);
            deduped = false;
            statically_pruned = true;
            por_pruned = false;
            parent = (if crash_only then None else Some 0);
            found = None;
          }
          :: !records
      end
      else
        match por_parent schedule with
        | Some parent ->
          (* Non-canonical: a fault slides earlier past provably independent
             task slots, so a lower-ranked equivalent schedule reproduces
             this run's verdict and per-run counters. Kept records at ranks
             ≤ the winner are clean (a violating schedule's canonical form
             wins first); the counters are copied from the parent chain once
             the workers join. *)
          records :=
            {
              rank;
              budget_hit = false;
              truncations = 0;
              undelivered = 0;
              undelivered_n = 0;
              vacuous = 0;
              deduped = false;
              statically_pruned = false;
              por_pruned = true;
              parent = Some parent;
              found = None;
            }
            :: !records
        | None -> begin
      let keyed = ref None in
      let on_active =
        if dedup then
          Some
            (fun ~step ~cursor exec ->
              let key = Fingerprint.key ~cursor exec in
              match Fingerprint.Visited.find visited key with
              | Some suffix when step + suffix <= cfg.max_steps -> `Prune
              | _ ->
                keyed := Some (key, step);
                `Continue)
        else None
      in
      let r =
        Runner.run ~monitors:eff_monitors ?interleave ?inputs ~max_steps:cfg.max_steps
          ?on_active ?prefix ~schedule sys
      in
      let base =
        {
          rank;
          budget_hit = false;
          truncations = List.length r.Runner.monitor_truncations;
          undelivered = r.Runner.undelivered_crashes;
          undelivered_n = r.Runner.undelivered_net;
          vacuous = r.Runner.vacuous_net_faults;
          deduped = false;
          statically_pruned = false;
          por_pruned = false;
          parent = None;
          found = None;
        }
      in
      let record =
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          note_best best rank;
          {
            base with
            found =
              Some
                { schedule; monitor; reason; proven; exec = r.Runner.exec;
                  steps = r.Runner.steps;
                  degraded_to = degraded_to_of cfg sys r.Runner.exec };
          }
        | Runner.Lasso _ ->
          (* Only proven-quiescent clean runs seed the visited table: a
             pruned twin would provably replay this suffix to the same
             verdict (its step budget permitting — hence the suffix guard
             above). Budget-bounded clean runs are never recorded, so a
             cutoff at a different point can never be inherited. *)
          (match !keyed with
          | Some (key, act) ->
            Fingerprint.Visited.add visited key ~suffix_steps:(r.Runner.steps - act)
          | None -> ());
          base
        | Runner.Budget -> { base with budget_hit = true }
        | Runner.Pruned -> { base with deduped = true }
      in
      records := record :: !records
      end
    end
  in
  let wall_stopped = Atomic.make false in
  let worker w () =
    let records = ref [] in
    let my = deques.(w) in
    let poison e =
      (* Let the sibling workers drain and exit instead of spinning on a
         counter that will never reach zero; the exception resurfaces at
         [Domain.join] (or directly, for worker 0). *)
      Atomic.set outstanding 0;
      raise e
    in
    let rec scavenge v =
      if v >= domains then None
      else
        match steal deques.((w + 1 + v) mod domains) with
        | Some range -> Some range
        | None -> scavenge (v + 1)
    in
    let rec loop () =
      if Atomic.get wall_stopped then ()
      else if stop () then
        (* Wall-clock budget expired: every worker drains on its next poll;
           the partial records merge into a wall-truncated report. *)
        Atomic.set wall_stopped true
      else if Atomic.get outstanding > 0 then begin
        (match next_rank my with
        | Some rank ->
          (try run_one rank records with e -> poison e);
          Atomic.decr outstanding
        | None -> (
          match scavenge 0 with
          | Some range -> push_front my range
          | None -> Domain.cpu_relax ()));
        loop ()
      end
    in
    loop ();
    !records
  in
  let spawned = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) ())) in
  let mine = worker 0 () in
  let partials = mine :: Array.to_list (Array.map Domain.join spawned) in
  let partials =
    (* Resolve inherited counters now that every parent's record exists: a
       POR-pruned record adopts the counters of its slid parent (following
       chains of slides to the concrete — or statically pruned, or deduped —
       source), and a net-bearing statically pruned record adopts the
       fault-free rank-0 run's monitor truncations. A missing parent can
       only mean the run was wall-truncated or the parent's rank sat past
       the best violation — in either case the child record is not part of
       the merged report's kept set, so the zero claims stand harmlessly. *)
    if por_dep = None && quiescence = None then partials
    else begin
      let records = List.concat partials in
      let by_rank = Hashtbl.create (max 16 (2 * List.length records)) in
      List.iter (fun r -> Hashtbl.replace by_rank r.rank r) records;
      let records =
        List.map
          (fun r ->
            match r.statically_pruned, r.parent with
            | true, Some p -> (
              match Hashtbl.find_opt by_rank p with
              | Some pr when (not pr.statically_pruned) && not pr.por_pruned ->
                { r with truncations = pr.truncations }
              | _ -> r)
            | _ -> r)
          records
      in
      List.iter (fun r -> Hashtbl.replace by_rank r.rank r) records;
      let memo = Hashtbl.create 16 in
      let rec source r =
        if not r.por_pruned then r
        else
          match r.parent with
          | None -> r
          | Some p -> (
            match Hashtbl.find_opt memo p with
            | Some s -> s
            | None ->
              let s =
                match Hashtbl.find_opt by_rank p with Some pr -> source pr | None -> r
              in
              Hashtbl.replace memo p s;
              s)
      in
      [
        List.map
          (fun r ->
            if not r.por_pruned then r
            else
              let s = source r in
              if s == r then r
              else
                {
                  r with
                  budget_hit = s.budget_hit;
                  truncations = s.truncations;
                  undelivered = s.undelivered;
                  undelivered_n = s.undelivered_n;
                  vacuous = s.vacuous;
                })
          records;
      ]
    end
  in
  (match record_sink with
  | Some sink -> sink (List.concat partials)
  | None -> ());
  merge ~wall:(Atomic.get wall_stopped) ~space ~scheduled partials

let pp_report ppf r =
  Format.fprintf ppf "@[<v>examined %d of %d candidate fault schedule(s)%s%s@," r.examined
    r.space
    (if r.truncated then " — TRUNCATED: enumeration budget hit before exhausting the space"
     else "")
    (if r.wall_truncated then " — truncated: wall-clock" else "");
  if r.dedup_hits > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by configuration fingerprint (verdict inherited from an \
       equivalent run)@,"
      r.dedup_hits;
  if r.static_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) statically pruned (proven clean by abstract interpretation, never \
       executed)@,"
      r.static_prunes;
  if r.por_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by partial-order reduction (fault placement equivalent to a \
       lower-ranked schedule, verdict inherited)@,"
      r.por_prunes;
  if r.step_budget_hits > 0 then
    Format.fprintf ppf
      "%d run(s) hit the step budget undecided — liveness verdicts there are bounded evidence only@,"
      r.step_budget_hits;
  if r.monitor_truncations > 0 then
    Format.fprintf ppf "%d monitor check(s) truncated (see per-run reports)@,"
      r.monitor_truncations;
  if r.undelivered_crashes > 0 then
    Format.fprintf ppf "%d scheduled crash(es) fell beyond the executed step range@,"
      r.undelivered_crashes;
  if r.undelivered_net > 0 then
    Format.fprintf ppf "%d scheduled network fault(s) fell beyond the executed step range@,"
      r.undelivered_net;
  if r.vacuous_net_faults > 0 then
    Format.fprintf ppf "%d delivered network fault(s) were vacuous (empty buffer)@,"
      r.vacuous_net_faults;
  (match r.violation with
  | Some v -> Format.fprintf ppf "%a@]" pp_violation v
  | None -> Format.fprintf ppf "no violation found@]")
