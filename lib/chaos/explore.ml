type config = {
  max_faults : int;
  horizon : int;
  stride : int;
  budget : int;
  max_steps : int;
}

let default_config (sys : Model.System.t) =
  {
    max_faults = 1;
    horizon = 2 * Array.length sys.Model.System.tasks;
    stride = 1;
    budget = 1_024;
    max_steps = 20_000;
  }

type violation = {
  schedule : Schedule.t;
  monitor : string;
  reason : string;
  proven : bool;
  exec : Model.Exec.t;
}

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>%s violated (%s) under schedule [%a]:@,%s@]" v.monitor
    (if v.proven then "proven" else "bounded evidence")
    Schedule.pp v.schedule v.reason

type report = {
  examined : int;
  space : int;
  truncated : bool;
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  dedup_hits : int;
  static_prunes : int;
  por_prunes : int;
  violation : violation option;
}

let grid cfg = List.init ((cfg.horizon + cfg.stride - 1) / cfg.stride) (fun i -> i * cfg.stride)

let rec choose k lst =
  (* k-subsets of [lst], lexicographic, as a lazy sequence. *)
  if k = 0 then Seq.return []
  else
    match lst with
    | [] -> Seq.empty
    | x :: rest ->
      Seq.append
        (Seq.map (fun c -> x :: c) (choose (k - 1) rest))
        (fun () -> choose k rest ())

let rec tuples k points =
  (* k-tuples over [points] (crash steps per chosen pid), lexicographic. *)
  if k = 0 then Seq.return []
  else
    Seq.flat_map
      (fun tl -> Seq.map (fun p -> p :: tl) (List.to_seq points))
      (fun () -> tuples (k - 1) points ())

let schedules ~n cfg =
  let points = grid cfg in
  let pids = List.init n Fun.id in
  let of_size k =
    Seq.flat_map
      (fun subset ->
        Seq.map
          (fun steps ->
            Schedule.make
              (List.map2 (fun pid step -> Schedule.crash ~step ~pid) subset (List.rev steps)))
          (tuples k points))
      (choose k pids)
  in
  Seq.flat_map of_size (Seq.init (cfg.max_faults + 1) Fun.id)

let space_size ~n cfg =
  let g = List.length (grid cfg) in
  let rec binom n k = if k = 0 || k = n then 1 else binom (n - 1) (k - 1) + binom (n - 1) k in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let rec sum k acc =
    if k > cfg.max_faults || k > n then acc else sum (k + 1) (acc + (binom n k * pow g k))
  in
  sum 0 0

let run ?monitors ?interleave ?inputs ?config (sys : Model.System.t) =
  let n = Model.System.n_processes sys in
  let cfg = match config with Some c -> c | None -> default_config sys in
  let space = space_size ~n cfg in
  let examined = ref 0 in
  let step_budget_hits = ref 0 in
  let monitor_truncations = ref 0 in
  let undelivered_crashes = ref 0 in
  let rec scan seq =
    match seq () with
    | Seq.Nil -> None, false
    | Seq.Cons (schedule, rest) ->
      if !examined >= cfg.budget then None, true
      else begin
        incr examined;
        let r =
          Runner.run ?monitors ?interleave ?inputs ~max_steps:cfg.max_steps ~schedule sys
        in
        monitor_truncations := !monitor_truncations + List.length r.Runner.monitor_truncations;
        undelivered_crashes := !undelivered_crashes + r.Runner.undelivered_crashes;
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          Some { schedule; monitor; reason; proven; exec = r.Runner.exec }, false
        | Runner.Lasso _ | Runner.Pruned -> scan rest
        | Runner.Budget ->
          incr step_budget_hits;
          scan rest
      end
  in
  let violation, truncated = scan (schedules ~n cfg) in
  {
    examined = !examined;
    space;
    truncated;
    step_budget_hits = !step_budget_hits;
    monitor_truncations = !monitor_truncations;
    undelivered_crashes = !undelivered_crashes;
    dedup_hits = 0;
    static_prunes = 0;
    por_prunes = 0;
    violation;
  }

(* --- parallel exploration --- *)

type run_record = {
  rank : int;
  budget_hit : bool;
  truncations : int;
  undelivered : int;
  deduped : bool;
  statically_pruned : bool;
  por_pruned : bool;
  found : violation option;
}

type partial = run_record list

let compare_found v1 v2 =
  let c = Schedule.compare v1.schedule v2.schedule in
  if c <> 0 then c
  else
    let c = String.compare v1.monitor v2.monitor in
    if c <> 0 then c
    else
      let c = String.compare v1.reason v2.reason in
      if c <> 0 then c else Bool.compare v1.proven v2.proven

let merge ~space ~scheduled partials =
  let records = List.concat partials in
  (* The winner is the enumeration-least violation: minimal rank, then the
     lexicographically least schedule. A pure function of the record
     multiset, so merging is order- and partition-insensitive. *)
  let winner =
    List.fold_left
      (fun best r ->
        match r.found with
        | None -> best
        | Some v -> (
          match best with
          | None -> Some (r.rank, v)
          | Some (br, bv) ->
            if r.rank < br || (r.rank = br && compare_found v bv < 0) then Some (r.rank, v)
            else best))
      None records
  in
  (* Sequential semantics stop scanning at the first violation: counters
     beyond the winning rank are not part of the report. *)
  let keep r = match winner with None -> true | Some (br, _) -> r.rank <= br in
  let kept = List.filter keep records in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 kept in
  {
    examined = (match winner with Some (br, _) -> br + 1 | None -> scheduled);
    space;
    truncated = winner = None && scheduled < space;
    step_budget_hits = sum (fun r -> if r.budget_hit then 1 else 0);
    monitor_truncations = sum (fun r -> r.truncations);
    undelivered_crashes = sum (fun r -> r.undelivered);
    dedup_hits = sum (fun r -> if r.deduped then 1 else 0);
    static_prunes = sum (fun r -> if r.statically_pruned then 1 else 0);
    por_prunes = sum (fun r -> if r.por_pruned then 1 else 0);
    violation = Option.map snd winner;
  }

(* A mutex-guarded deque of contiguous rank ranges per worker. The owner
   takes single ranks from the front; thieves split the back range in half
   (or take it whole), classic work-stealing shape. Correctness does not
   depend on who runs what: the merge is deterministic either way. *)
type deque = { mutable ranges : (int * int) list; lock : Mutex.t }

let deque ranges = { ranges; lock = Mutex.create () }

let locked d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let next_rank d =
  locked d (fun () ->
      match d.ranges with
      | [] -> None
      | (lo, hi) :: rest ->
        d.ranges <- (if lo + 1 < hi then (lo + 1, hi) :: rest else rest);
        Some lo)

let steal d =
  locked d (fun () ->
      match List.rev d.ranges with
      | [] -> None
      | (lo, hi) :: rev_rest ->
        if hi - lo >= 2 then begin
          let mid = (lo + hi) / 2 in
          d.ranges <- List.rev ((lo, mid) :: rev_rest);
          Some (mid, hi)
        end
        else begin
          d.ranges <- List.rev rev_rest;
          Some (lo, hi)
        end)

let push_front d range = locked d (fun () -> d.ranges <- range :: d.ranges)

let rec note_best best rank =
  let cur = Atomic.get best in
  if rank < cur && not (Atomic.compare_and_set best cur rank) then note_best best rank

(* --- partial-order reduction over crash placements ---

   Two schedules are equivalent when one is obtained from the other by
   sliding a crash delivery one grid notch earlier past task slots that are
   statically crash-independent ({!Analysis.Interfere.crash_interferes}):
   the slid-past tasks cannot observe the pid's crash bit, so both runs
   execute the same task slots with the same outcomes, reach the same
   configuration once the window closes, and the compiled schedules agree
   from there on — the verdicts coincide. The enumeration orders schedules
   lexicographically by crash step, so the earliest-crash form of every
   equivalence class has the least rank: a schedule from which some crash
   can still slide earlier is non-canonical and is skipped, its verdict
   represented by the lower-ranked form. Violating schedules are never the
   skipped side (their canonical form violates too, at lower rank), so the
   rank-least merged violation — and with it [examined] and [truncated] —
   matches the unreduced oracle exactly. *)

let por_crash_dep cfg (sys : Model.System.t) =
  (* dep.(pid).(task index): the task may observe pid's crash bit. The
     footprints are sharpened by the exploration's own fault bound. *)
  let inter = Analysis.Interfere.analyze ~max_crashes:cfg.max_faults sys in
  Array.init (Model.System.n_processes sys) (fun pid ->
      Array.map
        (fun tk -> Analysis.Interfere.crash_interferes inter ~pid tk)
        sys.Model.System.tasks)

let por_prunable ~dep ~stride ~n_tasks (s : Schedule.t) =
  (* Only the enumeration's own shape is eligible (crash-only, silencing
     default, no overrides) — same convention as the static-prune oracle. *)
  s.Schedule.overrides = []
  && s.Schedule.default_pref = Model.System.Prefer_dummy
  && List.for_all
       (function Schedule.Crash _ -> true | Schedule.Silence _ -> false)
       s.Schedule.faults
  &&
  (* Walk the crashes in delivery order (d_k = max(t_k, d_{k-1}+1)); crash k
     can slide from step t to t - stride iff the window stays clear of other
     deliveries (prev delivered strictly before t - stride, next scheduled
     strictly after t) and every task slot in [t - stride, t) — cursor u - k,
     k deliveries having happened — ignores the pid's crash bit. *)
  let rec scan k prev_delivery = function
    | [] -> false
    | (t, pid) :: rest ->
      let movable =
        prev_delivery < t - stride
        && (match rest with [] -> true | (t', _) :: _ -> t' > t)
        &&
        let ok = ref true in
        for u = t - stride to t - 1 do
          if dep.(pid).((u - k) mod n_tasks) then ok := false
        done;
        !ok
      in
      movable || scan (k + 1) (max t (prev_delivery + 1)) rest
  in
  scan 0 (-1) (Schedule.crashes s)

let run_par ?monitors ?interleave ?inputs ?config ?(domains = 1) ?(dedup = true)
    ?(static_prune = false) ?(por = false) (sys : Model.System.t) =
  let n = Model.System.n_processes sys in
  let cfg = match config with Some c -> c | None -> default_config sys in
  let space = space_size ~n cfg in
  let candidates = Array.of_seq (Seq.take (max 0 cfg.budget) (schedules ~n cfg)) in
  let scheduled = Array.length candidates in
  let quiescence =
    (* The abstract-interpretation infeasibility oracle: a certified step Q
       from which every crash-only silencing schedule provably ends in a
       clean lasso with all crashes delivered. Engaged only under the exact
       convention the certificate covers — default monitors, round-robin
       interleaving — and only when the step budget provably accommodates
       the longest pruned run (activation + crash deliveries + one full
       silent cycle), so a concrete twin could never have hit [Budget]. *)
    if
      static_prune && monitors = None
      && (match interleave with Some (Runner.Seeded _) -> false | _ -> true)
      && cfg.horizon + cfg.max_faults + Array.length sys.Model.System.tasks + 2
         <= cfg.max_steps
    then
      Analysis.Prune.clean_from ~max_faults:cfg.max_faults
        ~inputs:(match inputs with Some l -> l | None -> Runner.default_inputs sys)
        ~horizon:cfg.horizon sys
    else None
  in
  let por_dep =
    (* Engaged under the same convention as the quiescence oracle: default
       monitors (the swap argument needs monitors blind to crash events),
       deterministic round-robin interleaving, and a step budget that
       provably accommodates the longest pruned run. *)
    if
      por && monitors = None
      && (match interleave with Some (Runner.Seeded _) -> false | _ -> true)
      && cfg.horizon + cfg.max_faults + Array.length sys.Model.System.tasks + 2
         <= cfg.max_steps
    then Some (por_crash_dep cfg sys)
    else None
  in
  let n_tasks = Array.length sys.Model.System.tasks in
  let por_prunable_schedule s =
    match por_dep with
    | Some dep -> por_prunable ~dep ~stride:cfg.stride ~n_tasks s
    | None -> false
  in
  let prunable (s : Schedule.t) =
    match quiescence with
    | None -> false
    | Some q ->
      (* Crash-only silencing schedules with every crash at or past Q; the
         empty schedule is never pruned (it has rank 0, and concrete prefix
         violations must keep dominating the rank-least merge). *)
      s.Schedule.overrides = []
      && s.Schedule.default_pref = Model.System.Prefer_dummy
      && s.Schedule.faults <> []
      && List.for_all
           (function
             | Schedule.Crash { step; _ } -> step >= q
             | Schedule.Silence _ -> false)
           s.Schedule.faults
  in
  (* Clamp the spawned workers to the machine: oversubscribing domains past
     the core count makes every minor-collection barrier pay cross-thread
     scheduling latency (each stop-the-world must wait for descheduled
     domains to reach a safepoint). The merge is partition-insensitive, so
     the report is identical whatever the effective worker count. *)
  let domains =
    max 1 (min (min domains (Domain.recommended_domain_count ())) (max 1 scheduled))
  in
  let dedup =
    (* Sound only under the deterministic round-robin interleaving. *)
    dedup && match interleave with Some (Runner.Seeded _) -> false | _ -> true
  in
  let prefix =
    (* The shared fault-free stem: every enumerated candidate is crash-only
       under the silencing adversary, so all of them replay this prefix up
       to their first crash. Built once, read-only across domains. *)
    match interleave with
    | Some (Runner.Seeded _) -> None
    | _ when scheduled = 0 -> None
    | _ ->
      Some
        (Runner.prefix ?monitors ?inputs ~max_steps:cfg.max_steps
           ~steps:(min (max 0 (cfg.horizon - 1)) cfg.max_steps)
           sys)
  in
  let visited = Fingerprint.Visited.create () in
  let best = Atomic.make max_int in
  let outstanding = Atomic.make scheduled in
  let chunk = if scheduled = 0 then 1 else (scheduled + domains - 1) / domains in
  let deques =
    Array.init domains (fun w ->
        let lo = w * chunk and hi = min scheduled ((w + 1) * chunk) in
        deque (if lo < hi then [ (lo, hi) ] else []))
  in
  let run_one rank records =
    (* Ranks at or past the best violating rank cannot affect the merged
       report; skipping them is the early-exit that makes the search stop. *)
    if rank < Atomic.get best then begin
      let schedule = candidates.(rank) in
      if prunable schedule then
        (* Proven clean lasso: all crashes delivered, no truncations, no
           violation — exactly what the concrete run would have recorded. *)
        records :=
          {
            rank;
            budget_hit = false;
            truncations = 0;
            undelivered = 0;
            deduped = false;
            statically_pruned = true;
            por_pruned = false;
            found = None;
          }
          :: !records
      else if por_prunable_schedule schedule then
        (* Non-canonical: a crash slides earlier past provably independent
           task slots, so a lower-ranked equivalent schedule reproduces this
           run's verdict. Kept records at ranks ≤ the winner are clean (a
           violating schedule's canonical form wins first), all crashes
           delivered within the horizon, no truncations. *)
        records :=
          {
            rank;
            budget_hit = false;
            truncations = 0;
            undelivered = 0;
            deduped = false;
            statically_pruned = false;
            por_pruned = true;
            found = None;
          }
          :: !records
      else begin
      let keyed = ref None in
      let on_active =
        if dedup then
          Some
            (fun ~step ~cursor exec ->
              let key = Fingerprint.key ~cursor exec in
              match Fingerprint.Visited.find visited key with
              | Some suffix when step + suffix <= cfg.max_steps -> `Prune
              | _ ->
                keyed := Some (key, step);
                `Continue)
        else None
      in
      let r =
        Runner.run ?monitors ?interleave ?inputs ~max_steps:cfg.max_steps ?on_active
          ?prefix ~schedule sys
      in
      let base =
        {
          rank;
          budget_hit = false;
          truncations = List.length r.Runner.monitor_truncations;
          undelivered = r.Runner.undelivered_crashes;
          deduped = false;
          statically_pruned = false;
          por_pruned = false;
          found = None;
        }
      in
      let record =
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          note_best best rank;
          { base with found = Some { schedule; monitor; reason; proven; exec = r.Runner.exec } }
        | Runner.Lasso _ ->
          (* Only proven-quiescent clean runs seed the visited table: a
             pruned twin would provably replay this suffix to the same
             verdict (its step budget permitting — hence the suffix guard
             above). Budget-bounded clean runs are never recorded, so a
             cutoff at a different point can never be inherited. *)
          (match !keyed with
          | Some (key, act) ->
            Fingerprint.Visited.add visited key ~suffix_steps:(r.Runner.steps - act)
          | None -> ());
          base
        | Runner.Budget -> { base with budget_hit = true }
        | Runner.Pruned -> { base with deduped = true }
      in
      records := record :: !records
      end
    end
  in
  let worker w () =
    let records = ref [] in
    let my = deques.(w) in
    let poison e =
      (* Let the sibling workers drain and exit instead of spinning on a
         counter that will never reach zero; the exception resurfaces at
         [Domain.join] (or directly, for worker 0). *)
      Atomic.set outstanding 0;
      raise e
    in
    let rec scavenge v =
      if v >= domains then None
      else
        match steal deques.((w + 1 + v) mod domains) with
        | Some range -> Some range
        | None -> scavenge (v + 1)
    in
    let rec loop () =
      if Atomic.get outstanding > 0 then begin
        (match next_rank my with
        | Some rank ->
          (try run_one rank records with e -> poison e);
          Atomic.decr outstanding
        | None -> (
          match scavenge 0 with
          | Some range -> push_front my range
          | None -> Domain.cpu_relax ()));
        loop ()
      end
    in
    loop ();
    !records
  in
  let spawned = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) ())) in
  let mine = worker 0 () in
  let partials = mine :: Array.to_list (Array.map Domain.join spawned) in
  merge ~space ~scheduled partials

let pp_report ppf r =
  Format.fprintf ppf "@[<v>examined %d of %d candidate fault schedule(s)%s@," r.examined r.space
    (if r.truncated then " — TRUNCATED: enumeration budget hit before exhausting the space"
     else "");
  if r.dedup_hits > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by configuration fingerprint (verdict inherited from an \
       equivalent run)@,"
      r.dedup_hits;
  if r.static_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) statically pruned (proven clean by abstract interpretation, never \
       executed)@,"
      r.static_prunes;
  if r.por_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by partial-order reduction (crash placement equivalent to a \
       lower-ranked schedule, verdict inherited)@,"
      r.por_prunes;
  if r.step_budget_hits > 0 then
    Format.fprintf ppf
      "%d run(s) hit the step budget undecided — liveness verdicts there are bounded evidence only@,"
      r.step_budget_hits;
  if r.monitor_truncations > 0 then
    Format.fprintf ppf "%d monitor check(s) truncated (see per-run reports)@,"
      r.monitor_truncations;
  if r.undelivered_crashes > 0 then
    Format.fprintf ppf "%d scheduled crash(es) fell beyond the executed step range@,"
      r.undelivered_crashes;
  (match r.violation with
  | Some v -> Format.fprintf ppf "%a@]" pp_violation v
  | None -> Format.fprintf ppf "no violation found@]")
