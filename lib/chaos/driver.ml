type mode =
  | Systematic of Explore.config
  | Seeded of {
      seed : int;
      runs : int;
      max_faults : int;
      horizon : int;
      max_steps : int;
      kinds : Schedule.kind list;
      degrade : bool;
    }

type outcome =
  | Passed
  | Violated of {
      original : Explore.violation;
      minimized : Explore.violation option;
      shrink_stats : Shrink.stats option;
      witness : Engine.Counterexample.witness option;
      replayed : bool option;
    }

type report = {
  mode : mode;
  examined : int;
  space : int;
  truncated : bool;
  wall_truncated : bool;
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  undelivered_net : int;
  vacuous_net_faults : int;
  dedup_hits : int;
  static_prunes : int;
  por_prunes : int;
  outcome : outcome;
}

let witness_of_violation (v : Explore.violation) =
  match v.Explore.monitor with
  | "agreement" | "per-process agreement" ->
    Some (Engine.Counterexample.Agreement_violation v.Explore.exec)
  | "validity" -> Some (Engine.Counterexample.Validity_violation v.Explore.exec)
  | "f-termination" ->
    Some
      (Engine.Counterexample.Non_termination
         {
           exec = v.Explore.exec;
           failed = Schedule.crashed_pids v.Explore.schedule;
           proven = v.Explore.proven;
         })
  | _ -> None (* k-agreement, linearizability: no engine constructor; reported directly. *)

let violated ?monitors ?max_steps ?interleave ?inputs ~shrink sys original =
  let minimized, shrink_stats =
    if shrink then
      let m, st = Shrink.shrink ?monitors ?max_steps ?interleave ?inputs sys original in
      Some m, Some st
    else None, None
  in
  let minimized =
    (* The shrinker carries the original's damage annotation through [with];
       recompute it on the minimized prefix, whose damage may be smaller. *)
    match original.Explore.degraded_to with
    | None -> minimized
    | Some _ ->
      Option.map
        (fun (m : Explore.violation) ->
          { m with Explore.degraded_to = Some (Degrade.describe sys m.Explore.exec) })
        minimized
  in
  let final = Option.value minimized ~default:original in
  Violated
    { original; minimized; shrink_stats; witness = witness_of_violation final; replayed = None }

(* --- the persistent verdict cache ---

   One entry per systematic sweep, keyed by the system's structural hash
   plus every configuration knob the report can depend on. The payload
   stores the verdict data only — counters, the per-schedule record table
   when the parallel engine produced one, and the winning/minimized
   schedules as schedule strings. Executions are deliberately not stored: a
   hit re-runs the (deterministic) stored schedules through {!Runner.run}
   to regenerate the violating prefixes and the witness, and any mismatch
   with the recorded verdict demotes the entry to corrupt and falls back to
   a cold sweep. Only default-monitor, default-input, non-wall-truncated
   sweeps are cached; seeded mode never is. *)

module Codec = Analysis.Codec

let bool_out b v = Codec.int_out b (if v then 1 else 0)
let bool_in c = Codec.int_in c <> 0

let opt_out item b = function
  | None -> Buffer.add_char b '-'
  | Some x ->
    Buffer.add_char b '+';
    item b x

let opt_in item c =
  match Codec.next c with
  | '-' -> None
  | '+' -> Some (item c)
  | ch -> raise (Codec.Corrupt (Printf.sprintf "bad option tag %c" ch))

type vdesc = {
  v_sched : string;
  v_monitor : string;
  v_reason : string;
  v_proven : bool;
  v_steps : int;
}

let desc_of (v : Explore.violation) =
  {
    v_sched = Schedule.to_string v.Explore.schedule;
    v_monitor = v.Explore.monitor;
    v_reason = v.Explore.reason;
    v_proven = v.Explore.proven;
    v_steps = v.Explore.steps;
  }

let desc_out b d =
  Codec.string_out b d.v_sched;
  Codec.string_out b d.v_monitor;
  Codec.string_out b d.v_reason;
  bool_out b d.v_proven;
  Codec.int_out b d.v_steps

let desc_in c =
  let v_sched = Codec.string_in c in
  let v_monitor = Codec.string_in c in
  let v_reason = Codec.string_in c in
  let v_proven = bool_in c in
  let v_steps = Codec.int_in c in
  { v_sched; v_monitor; v_reason; v_proven; v_steps }

(* Violations in the record table never surface in the merge except through
   the winner (rank-least), so [found] is dropped here and the winner is
   reattached from the entry-level descriptor at decode time. *)
let record_out b (r : Explore.run_record) =
  Codec.int_out b r.Explore.rank;
  let bits =
    (if r.Explore.budget_hit then 1 else 0)
    lor (if r.Explore.deduped then 2 else 0)
    lor (if r.Explore.statically_pruned then 4 else 0)
    lor if r.Explore.por_pruned then 8 else 0
  in
  Codec.int_out b bits;
  Codec.int_out b r.Explore.truncations;
  Codec.int_out b r.Explore.undelivered;
  Codec.int_out b r.Explore.undelivered_n;
  Codec.int_out b r.Explore.vacuous;
  opt_out (fun b p -> Codec.int_out b p) b r.Explore.parent

let record_in c =
  let rank = Codec.int_in c in
  let bits = Codec.int_in c in
  let truncations = Codec.int_in c in
  let undelivered = Codec.int_in c in
  let undelivered_n = Codec.int_in c in
  let vacuous = Codec.int_in c in
  let parent = opt_in Codec.int_in c in
  {
    Explore.rank;
    budget_hit = bits land 1 <> 0;
    truncations;
    undelivered;
    undelivered_n;
    vacuous;
    deduped = bits land 2 <> 0;
    statically_pruned = bits land 4 <> 0;
    por_pruned = bits land 8 <> 0;
    parent;
    found = None;
  }

let chaos_key (h : Analysis.Structhash.t) (cfg : Explore.config) ~domains ~dedup
    ~static_prune ~por ~shrink ~seq =
  let tokens =
    [
      "mf" ^ string_of_int cfg.Explore.max_faults;
      "h" ^ string_of_int cfg.Explore.horizon;
      "st" ^ string_of_int cfg.Explore.stride;
      "b" ^ string_of_int cfg.Explore.budget;
      "ms" ^ string_of_int cfg.Explore.max_steps;
      "k"
      ^ String.concat ","
          (List.map (fun k -> Format.asprintf "%a" Schedule.pp_kind k) cfg.Explore.kinds);
      (if cfg.Explore.degrade then "deg" else "nodeg");
      (* The engine and its pruning knobs all shape the report's counters;
         [domains] is included because dedup racing can shift which twin of
         a fingerprint pair gets pruned. *)
      (if seq then "seq" else "par" ^ string_of_int domains);
      (if dedup && not seq then "dedup" else "nodedup");
      (if static_prune then "sp" else "nosp");
      (if por then "por" else "nopor");
      (if shrink then "shr" else "noshr");
      "idef";
    ]
  in
  Printf.sprintf "%s-%s" (Analysis.Structhash.key h)
    (Analysis.Structhash.hex (Analysis.Structhash.mix_tokens tokens))

(* Deterministic re-execution of a stored schedule under the sweep's
   effective (default) monitor family; the regenerated run must reproduce
   the recorded verdict exactly or the entry is rejected. *)
let replay (cfg : Explore.config) sys d =
  let schedule =
    match Schedule.parse d.v_sched with
    | Ok s -> s
    | Error e -> raise (Codec.Corrupt ("bad stored schedule: " ^ e))
  in
  let monitors = Monitor.defaults ~degrade:cfg.Explore.degrade () in
  let r = Runner.run ~monitors ~max_steps:cfg.Explore.max_steps ~schedule sys in
  match r.Runner.stop with
  | Runner.Violation { monitor; reason; proven }
    when String.equal monitor d.v_monitor
         && String.equal reason d.v_reason
         && proven = d.v_proven
         && r.Runner.steps = d.v_steps ->
    {
      Explore.schedule;
      monitor;
      reason;
      proven;
      exec = r.Runner.exec;
      steps = r.Runner.steps;
      degraded_to =
        (if cfg.Explore.degrade then Some (Degrade.describe sys r.Runner.exec) else None);
    }
  | _ -> raise (Codec.Corrupt "stored verdict does not replay")

let encode_entry b (r : Explore.report) ~records ~outcome =
  (match records with
  | None ->
    Buffer.add_char b 'S';
    Codec.int_out b r.Explore.examined;
    Codec.int_out b r.Explore.space;
    bool_out b r.Explore.truncated;
    Codec.int_out b r.Explore.step_budget_hits;
    Codec.int_out b r.Explore.monitor_truncations;
    Codec.int_out b r.Explore.undelivered_crashes;
    Codec.int_out b r.Explore.undelivered_net;
    Codec.int_out b r.Explore.vacuous_net_faults;
    Codec.int_out b r.Explore.dedup_hits;
    Codec.int_out b r.Explore.static_prunes;
    Codec.int_out b r.Explore.por_prunes
  | Some recs ->
    Buffer.add_char b 'R';
    Codec.int_out b r.Explore.space;
    Codec.int_out b (List.length recs);
    List.iter (record_out b) recs);
  match outcome with
  | Passed -> Buffer.add_char b 'P'
  | Violated { original; minimized; shrink_stats; _ } ->
    Buffer.add_char b 'V';
    (* The winning rank ([examined] counts through it) keys the reattachment
       of the violation into the record table. *)
    Codec.int_out b (r.Explore.examined - 1);
    desc_out b (desc_of original);
    opt_out (fun b m -> desc_out b (desc_of m)) b minimized;
    opt_out
      (fun b (st : Shrink.stats) ->
        Codec.int_out b st.Shrink.candidates;
        Codec.int_out b st.Shrink.runs)
      b shrink_stats

let decode_entry (cfg : Explore.config) sys payload =
  let c = Codec.cursor payload in
  let shape = Codec.next c in
  let counters, records =
    match shape with
    | 'S' ->
      let examined = Codec.int_in c in
      let space = Codec.int_in c in
      let truncated = bool_in c in
      let step_budget_hits = Codec.int_in c in
      let monitor_truncations = Codec.int_in c in
      let undelivered_crashes = Codec.int_in c in
      let undelivered_net = Codec.int_in c in
      let vacuous_net_faults = Codec.int_in c in
      let dedup_hits = Codec.int_in c in
      let static_prunes = Codec.int_in c in
      let por_prunes = Codec.int_in c in
      ( Some
          {
            Explore.examined;
            space;
            truncated;
            wall_truncated = false;
            step_budget_hits;
            monitor_truncations;
            undelivered_crashes;
            undelivered_net;
            vacuous_net_faults;
            dedup_hits;
            static_prunes;
            por_prunes;
            violation = None;
          },
        None )
    | 'R' ->
      let space = Codec.int_in c in
      if space <> Explore.space_size sys cfg then
        raise (Codec.Corrupt "stored space does not match the configuration");
      let n = Codec.int_in c in
      if n < 0 then raise (Codec.Corrupt "negative record count");
      None, Some (space, List.init n (fun _ -> record_in c))
    | ch -> raise (Codec.Corrupt (Printf.sprintf "bad entry shape %c" ch))
  in
  let finish violation =
    match counters, records with
    | Some er, _ -> { er with Explore.violation = Option.map snd violation }
    | None, Some (space, recs) ->
      let recs =
        match violation with
        | None -> recs
        | Some (rank, v) ->
          List.map
            (fun (rr : Explore.run_record) ->
              if rr.Explore.rank = rank then { rr with Explore.found = Some v } else rr)
            recs
      in
      let scheduled = min (max 0 cfg.Explore.budget) space in
      let er = Explore.merge ~space ~scheduled [ recs ] in
      if (violation <> None) <> Option.is_some er.Explore.violation then
        raise (Codec.Corrupt "winning rank missing from the record table");
      er
    | None, None -> assert false
  in
  match Codec.next c with
  | 'P' -> finish None, Passed
  | 'V' ->
    let rank = Codec.int_in c in
    let original_desc = desc_in c in
    let minimized_desc = opt_in desc_in c in
    let shrink_stats =
      opt_in
        (fun c ->
          let candidates = Codec.int_in c in
          let runs = Codec.int_in c in
          { Shrink.candidates; runs })
        c
    in
    let original = replay cfg sys original_desc in
    let minimized = Option.map (replay cfg sys) minimized_desc in
    let final = Option.value minimized ~default:original in
    let outcome =
      Violated
        {
          original;
          minimized;
          shrink_stats;
          witness = witness_of_violation final;
          replayed = None;
        }
    in
    finish (Some (rank, original)), outcome
  | ch -> raise (Codec.Corrupt (Printf.sprintf "bad outcome tag %c" ch))

let systematic_report mode (r : Explore.report) outcome =
  {
    mode;
    examined = r.Explore.examined;
    space = r.Explore.space;
    truncated = r.Explore.truncated;
    wall_truncated = r.Explore.wall_truncated;
    step_budget_hits = r.Explore.step_budget_hits;
    monitor_truncations = r.Explore.monitor_truncations;
    undelivered_crashes = r.Explore.undelivered_crashes;
    undelivered_net = r.Explore.undelivered_net;
    vacuous_net_faults = r.Explore.vacuous_net_faults;
    dedup_hits = r.Explore.dedup_hits;
    static_prunes = r.Explore.static_prunes;
    por_prunes = r.Explore.por_prunes;
    outcome;
  }

let run ?monitors ?inputs ?(shrink = true) ?(domains = 1) ?(dedup = true)
    ?(static_prune = false) ?(por = false) ?cache ?(stop = fun () -> false) mode sys =
  match mode with
  | Systematic config -> (
    let seq = domains <= 1 && not static_prune && not por in
    let cache_ctx =
      (* Cacheable sweeps only: default monitors (a custom family cannot be
         keyed) and default inputs. *)
      match cache, monitors, inputs with
      | Some (c, h), None, None ->
        Some (c, chaos_key h config ~domains ~dedup ~static_prune ~por ~shrink ~seq)
      | _ -> None
    in
    let cached =
      match cache_ctx with
      | None -> None
      | Some (c, key) ->
        Analysis.Cache.lookup c ~kind:"chaos" ~key
          ~decode:(fun payload -> Some (decode_entry config sys payload))
    in
    match cached with
    | Some (r, outcome) -> systematic_report mode r outcome
    | None ->
      let recorded = ref None in
      let r =
        (* One domain keeps the trusted sequential path, byte-identical to the
           pre-parallel engine; more domains (or either static oracle) go
           through the deduplicated work-stealing explorer. The explorer gets
           the caller's monitors verbatim — its static oracles key on the
           caller not overriding the (degrade-aware) defaults. *)
        if seq then Explore.run ?monitors ?inputs ~config ~stop sys
        else
          Explore.run_par ?monitors ?inputs ~config ~domains ~dedup ~static_prune ~por
            ?cache:(Option.map (fun (c, h) -> c, Analysis.Structhash.key h) cache)
            ?record_sink:
              (match cache_ctx with
              | Some _ -> Some (fun recs -> recorded := Some recs)
              | None -> None)
            ~stop sys
      in
      let shrink_monitors =
        (* The shrinker must judge candidates by the same family the explorer
           ran, or a degrade-aware violation could "vanish" while minimizing. *)
        match monitors with
        | Some _ -> monitors
        | None ->
          if config.Explore.degrade then Some (Monitor.defaults ~degrade:true ())
          else None
      in
      let outcome =
        match r.Explore.violation with
        | None -> Passed
        | Some v ->
          violated ?monitors:shrink_monitors ~max_steps:config.Explore.max_steps ?inputs
            ~shrink sys v
      in
      (match cache_ctx with
      | Some (c, key) when not r.Explore.wall_truncated ->
        let b = Buffer.create 1024 in
        encode_entry b r ~records:!recorded ~outcome;
        Analysis.Cache.store c ~kind:"chaos" ~key (Buffer.contents b)
      | _ -> ());
      systematic_report mode r outcome)
  | Seeded { seed; runs; max_faults; horizon; max_steps; kinds; degrade } ->
    let monitors =
      (* Same degrade-aware defaulting as the systematic path; the seeded
         engine never engages the static oracles, so nothing keys on None. *)
      match monitors with
      | Some _ -> monitors
      | None -> if degrade then Some (Monitor.defaults ~degrade:true ()) else None
    in
    let step_budget_hits = ref 0 and monitor_truncations = ref 0 in
    let undelivered = ref 0 and undelivered_n = ref 0 and vacuous = ref 0 in
    let wall = ref false in
    let rec go i =
      if i >= runs then None, runs
      else if stop () then begin
        wall := true;
        None, i
      end
      else begin
        let seed_i = seed + i in
        let r, schedule =
          Rand.run ~seed:seed_i ~max_faults ~horizon ~kinds ?monitors ~max_steps ?inputs
            sys
        in
        monitor_truncations := !monitor_truncations + List.length r.Runner.monitor_truncations;
        undelivered := !undelivered + r.Runner.undelivered_crashes;
        undelivered_n := !undelivered_n + r.Runner.undelivered_net;
        vacuous := !vacuous + r.Runner.vacuous_net_faults;
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          ( Some
              (seed_i,
               Explore.
                 { schedule; monitor; reason; proven; exec = r.Runner.exec;
                   steps = r.Runner.steps;
                   degraded_to =
                     (if degrade then Some (Degrade.describe sys r.Runner.exec)
                      else None) }),
            i + 1 )
        | Runner.Lasso _ | Runner.Pruned -> go (i + 1)
        | Runner.Budget ->
          incr step_budget_hits;
          go (i + 1)
      end
    in
    let found, examined = go 0 in
    let outcome =
      match found with
      | None -> Passed
      | Some (seed_i, v) ->
        let interleave = Rand.interleave ~seed:seed_i in
        (* Exact replay: the same seed must reproduce the identical trace. *)
        let replay, _ =
          Rand.run ~seed:seed_i ~max_faults ~horizon ~kinds ?monitors ~max_steps ?inputs
            sys
        in
        let replayed =
          List.equal Model.Event.equal
            (Model.Exec.events v.Explore.exec)
            (Model.Exec.events replay.Runner.exec)
        in
        (match
           violated ?monitors ~max_steps ~interleave ?inputs ~shrink sys v
         with
        | Violated x -> Violated { x with replayed = Some replayed }
        | o -> o)
    in
    {
      mode;
      examined;
      space = runs;
      truncated = false;
      wall_truncated = !wall;
      step_budget_hits = !step_budget_hits;
      monitor_truncations = !monitor_truncations;
      undelivered_crashes = !undelivered;
      undelivered_net = !undelivered_n;
      vacuous_net_faults = !vacuous;
      dedup_hits = 0;
      static_prunes = 0;
      por_prunes = 0;
      outcome;
    }

let pp_mode ppf = function
  | Systematic c ->
    Format.fprintf ppf
      "systematic exploration (≤%d fault(s) of {%a}, horizon %d, stride %d)"
      c.Explore.max_faults
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Schedule.pp_kind)
      c.Explore.kinds c.Explore.horizon c.Explore.stride
  | Seeded { seed; runs; max_faults; kinds; _ } ->
    Format.fprintf ppf "seeded chaos (seed %d, %d run(s), ≤%d fault(s) of {%a})" seed runs
      max_faults
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Schedule.pp_kind)
      kinds

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a@," pp_mode r.mode;
  Format.fprintf ppf "examined %d of %d candidate schedule(s)%s%s@," r.examined r.space
    (if r.truncated then " — TRUNCATED: enumeration budget hit before exhausting the space"
     else "")
    (if r.wall_truncated then " — truncated: wall-clock" else "");
  if r.dedup_hits > 0 then
    Format.fprintf ppf "%d schedule(s) pruned by configuration fingerprint@," r.dedup_hits;
  if r.static_prunes > 0 then
    Format.fprintf ppf "%d schedule(s) statically pruned (proven clean, never executed)@,"
      r.static_prunes;
  if r.por_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by partial-order reduction (verdict inherited from the \
       canonical fault placement)@,"
      r.por_prunes;
  if r.step_budget_hits > 0 then
    Format.fprintf ppf
      "%d run(s) hit the step budget undecided — liveness verdicts there are bounded evidence only@,"
      r.step_budget_hits;
  if r.monitor_truncations > 0 then
    Format.fprintf ppf "%d monitor check(s) truncated@," r.monitor_truncations;
  if r.undelivered_crashes > 0 then
    Format.fprintf ppf "%d scheduled crash(es) fell beyond the executed step range@,"
      r.undelivered_crashes;
  if r.undelivered_net > 0 then
    Format.fprintf ppf
      "%d scheduled network fault(s) fell beyond the executed step range@,"
      r.undelivered_net;
  if r.vacuous_net_faults > 0 then
    Format.fprintf ppf "%d delivered network fault(s) found an empty buffer (vacuous)@,"
      r.vacuous_net_faults;
  (match r.outcome with
  | Passed -> Format.fprintf ppf "all monitors passed@]"
  | Violated { original; minimized; shrink_stats; witness; replayed } ->
    Format.fprintf ppf "%a@," Explore.pp_violation original;
    (match minimized, shrink_stats with
    | Some m, Some st ->
      Format.fprintf ppf "minimized to [%a] after %d candidate(s), %d re-run(s)@,"
        Schedule.pp m.Explore.schedule st.Shrink.candidates st.Shrink.runs;
      Format.fprintf ppf "minimal schedule: %s@," (Schedule.to_string m.Explore.schedule);
      (match m.Explore.degraded_to with
      | Some vec -> Format.fprintf ppf "minimal damage degrades to %s@," vec
      | None -> ())
    | _ -> ());
    (match replayed with
    | Some true -> Format.fprintf ppf "seed replay: identical trace reproduced@,"
    | Some false -> Format.fprintf ppf "seed replay: MISMATCH (nondeterminism bug!)@,"
    | None -> ());
    (match witness with
    | Some w -> Format.fprintf ppf "witness: %a@]" Engine.Counterexample.pp_witness w
    | None -> Format.fprintf ppf "@]"))
