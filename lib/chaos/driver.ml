type mode =
  | Systematic of Explore.config
  | Seeded of {
      seed : int;
      runs : int;
      max_faults : int;
      horizon : int;
      max_steps : int;
      kinds : Schedule.kind list;
      degrade : bool;
    }

type outcome =
  | Passed
  | Violated of {
      original : Explore.violation;
      minimized : Explore.violation option;
      shrink_stats : Shrink.stats option;
      witness : Engine.Counterexample.witness option;
      replayed : bool option;
    }

type report = {
  mode : mode;
  examined : int;
  space : int;
  truncated : bool;
  wall_truncated : bool;
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  undelivered_net : int;
  vacuous_net_faults : int;
  dedup_hits : int;
  static_prunes : int;
  por_prunes : int;
  outcome : outcome;
}

let witness_of_violation (v : Explore.violation) =
  match v.Explore.monitor with
  | "agreement" | "per-process agreement" ->
    Some (Engine.Counterexample.Agreement_violation v.Explore.exec)
  | "validity" -> Some (Engine.Counterexample.Validity_violation v.Explore.exec)
  | "f-termination" ->
    Some
      (Engine.Counterexample.Non_termination
         {
           exec = v.Explore.exec;
           failed = Schedule.crashed_pids v.Explore.schedule;
           proven = v.Explore.proven;
         })
  | _ -> None (* k-agreement, linearizability: no engine constructor; reported directly. *)

let violated ?monitors ?max_steps ?interleave ?inputs ~shrink sys original =
  let minimized, shrink_stats =
    if shrink then
      let m, st = Shrink.shrink ?monitors ?max_steps ?interleave ?inputs sys original in
      Some m, Some st
    else None, None
  in
  let minimized =
    (* The shrinker carries the original's damage annotation through [with];
       recompute it on the minimized prefix, whose damage may be smaller. *)
    match original.Explore.degraded_to with
    | None -> minimized
    | Some _ ->
      Option.map
        (fun (m : Explore.violation) ->
          { m with Explore.degraded_to = Some (Degrade.describe sys m.Explore.exec) })
        minimized
  in
  let final = Option.value minimized ~default:original in
  Violated
    { original; minimized; shrink_stats; witness = witness_of_violation final; replayed = None }

let run ?monitors ?inputs ?(shrink = true) ?(domains = 1) ?(dedup = true)
    ?(static_prune = false) ?(por = false) ?(stop = fun () -> false) mode sys =
  match mode with
  | Systematic config ->
    let r =
      (* One domain keeps the trusted sequential path, byte-identical to the
         pre-parallel engine; more domains (or either static oracle) go
         through the deduplicated work-stealing explorer. The explorer gets
         the caller's monitors verbatim — its static oracles key on the
         caller not overriding the (degrade-aware) defaults. *)
      if domains <= 1 && not static_prune && not por then
        Explore.run ?monitors ?inputs ~config ~stop sys
      else
        Explore.run_par ?monitors ?inputs ~config ~domains ~dedup ~static_prune ~por
          ~stop sys
    in
    let shrink_monitors =
      (* The shrinker must judge candidates by the same family the explorer
         ran, or a degrade-aware violation could "vanish" while minimizing. *)
      match monitors with
      | Some _ -> monitors
      | None ->
        if config.Explore.degrade then Some (Monitor.defaults ~degrade:true ()) else None
    in
    let outcome =
      match r.Explore.violation with
      | None -> Passed
      | Some v ->
        violated ?monitors:shrink_monitors ~max_steps:config.Explore.max_steps ?inputs
          ~shrink sys v
    in
    {
      mode;
      examined = r.Explore.examined;
      space = r.Explore.space;
      truncated = r.Explore.truncated;
      wall_truncated = r.Explore.wall_truncated;
      step_budget_hits = r.Explore.step_budget_hits;
      monitor_truncations = r.Explore.monitor_truncations;
      undelivered_crashes = r.Explore.undelivered_crashes;
      undelivered_net = r.Explore.undelivered_net;
      vacuous_net_faults = r.Explore.vacuous_net_faults;
      dedup_hits = r.Explore.dedup_hits;
      static_prunes = r.Explore.static_prunes;
      por_prunes = r.Explore.por_prunes;
      outcome;
    }
  | Seeded { seed; runs; max_faults; horizon; max_steps; kinds; degrade } ->
    let monitors =
      (* Same degrade-aware defaulting as the systematic path; the seeded
         engine never engages the static oracles, so nothing keys on None. *)
      match monitors with
      | Some _ -> monitors
      | None -> if degrade then Some (Monitor.defaults ~degrade:true ()) else None
    in
    let step_budget_hits = ref 0 and monitor_truncations = ref 0 in
    let undelivered = ref 0 and undelivered_n = ref 0 and vacuous = ref 0 in
    let wall = ref false in
    let rec go i =
      if i >= runs then None, runs
      else if stop () then begin
        wall := true;
        None, i
      end
      else begin
        let seed_i = seed + i in
        let r, schedule =
          Rand.run ~seed:seed_i ~max_faults ~horizon ~kinds ?monitors ~max_steps ?inputs
            sys
        in
        monitor_truncations := !monitor_truncations + List.length r.Runner.monitor_truncations;
        undelivered := !undelivered + r.Runner.undelivered_crashes;
        undelivered_n := !undelivered_n + r.Runner.undelivered_net;
        vacuous := !vacuous + r.Runner.vacuous_net_faults;
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          ( Some
              (seed_i,
               Explore.
                 { schedule; monitor; reason; proven; exec = r.Runner.exec;
                   steps = r.Runner.steps;
                   degraded_to =
                     (if degrade then Some (Degrade.describe sys r.Runner.exec)
                      else None) }),
            i + 1 )
        | Runner.Lasso _ | Runner.Pruned -> go (i + 1)
        | Runner.Budget ->
          incr step_budget_hits;
          go (i + 1)
      end
    in
    let found, examined = go 0 in
    let outcome =
      match found with
      | None -> Passed
      | Some (seed_i, v) ->
        let interleave = Rand.interleave ~seed:seed_i in
        (* Exact replay: the same seed must reproduce the identical trace. *)
        let replay, _ =
          Rand.run ~seed:seed_i ~max_faults ~horizon ~kinds ?monitors ~max_steps ?inputs
            sys
        in
        let replayed =
          List.equal Model.Event.equal
            (Model.Exec.events v.Explore.exec)
            (Model.Exec.events replay.Runner.exec)
        in
        (match
           violated ?monitors ~max_steps ~interleave ?inputs ~shrink sys v
         with
        | Violated x -> Violated { x with replayed = Some replayed }
        | o -> o)
    in
    {
      mode;
      examined;
      space = runs;
      truncated = false;
      wall_truncated = !wall;
      step_budget_hits = !step_budget_hits;
      monitor_truncations = !monitor_truncations;
      undelivered_crashes = !undelivered;
      undelivered_net = !undelivered_n;
      vacuous_net_faults = !vacuous;
      dedup_hits = 0;
      static_prunes = 0;
      por_prunes = 0;
      outcome;
    }

let pp_mode ppf = function
  | Systematic c ->
    Format.fprintf ppf
      "systematic exploration (≤%d fault(s) of {%a}, horizon %d, stride %d)"
      c.Explore.max_faults
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Schedule.pp_kind)
      c.Explore.kinds c.Explore.horizon c.Explore.stride
  | Seeded { seed; runs; max_faults; kinds; _ } ->
    Format.fprintf ppf "seeded chaos (seed %d, %d run(s), ≤%d fault(s) of {%a})" seed runs
      max_faults
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Schedule.pp_kind)
      kinds

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a@," pp_mode r.mode;
  Format.fprintf ppf "examined %d of %d candidate schedule(s)%s%s@," r.examined r.space
    (if r.truncated then " — TRUNCATED: enumeration budget hit before exhausting the space"
     else "")
    (if r.wall_truncated then " — truncated: wall-clock" else "");
  if r.dedup_hits > 0 then
    Format.fprintf ppf "%d schedule(s) pruned by configuration fingerprint@," r.dedup_hits;
  if r.static_prunes > 0 then
    Format.fprintf ppf "%d schedule(s) statically pruned (proven clean, never executed)@,"
      r.static_prunes;
  if r.por_prunes > 0 then
    Format.fprintf ppf
      "%d schedule(s) pruned by partial-order reduction (verdict inherited from the \
       canonical fault placement)@,"
      r.por_prunes;
  if r.step_budget_hits > 0 then
    Format.fprintf ppf
      "%d run(s) hit the step budget undecided — liveness verdicts there are bounded evidence only@,"
      r.step_budget_hits;
  if r.monitor_truncations > 0 then
    Format.fprintf ppf "%d monitor check(s) truncated@," r.monitor_truncations;
  if r.undelivered_crashes > 0 then
    Format.fprintf ppf "%d scheduled crash(es) fell beyond the executed step range@,"
      r.undelivered_crashes;
  if r.undelivered_net > 0 then
    Format.fprintf ppf
      "%d scheduled network fault(s) fell beyond the executed step range@,"
      r.undelivered_net;
  if r.vacuous_net_faults > 0 then
    Format.fprintf ppf "%d delivered network fault(s) found an empty buffer (vacuous)@,"
      r.vacuous_net_faults;
  (match r.outcome with
  | Passed -> Format.fprintf ppf "all monitors passed@]"
  | Violated { original; minimized; shrink_stats; witness; replayed } ->
    Format.fprintf ppf "%a@," Explore.pp_violation original;
    (match minimized, shrink_stats with
    | Some m, Some st ->
      Format.fprintf ppf "minimized to [%a] after %d candidate(s), %d re-run(s)@,"
        Schedule.pp m.Explore.schedule st.Shrink.candidates st.Shrink.runs;
      Format.fprintf ppf "minimal schedule: %s@," (Schedule.to_string m.Explore.schedule);
      (match m.Explore.degraded_to with
      | Some vec -> Format.fprintf ppf "minimal damage degrades to %s@," vec
      | None -> ())
    | _ -> ());
    (match replayed with
    | Some true -> Format.fprintf ppf "seed replay: identical trace reproduced@,"
    | Some false -> Format.fprintf ppf "seed replay: MISMATCH (nondeterminism bug!)@,"
    | None -> ());
    (match witness with
    | Some w -> Format.fprintf ppf "witness: %a@]" Engine.Counterexample.pp_witness w
    | None -> Format.fprintf ppf "@]"))
