(** First-class fault schedules (paper §2.1.3 made data).

    A fault schedule is the adversary's plan, reified: which [fail_i] inputs
    to deliver and when, which services to (attempt to) silence from which
    step, which network faults to inject into which response buffers, which
    partitions to impose and when to heal them, and how to resolve the
    real-vs-dummy nondeterminism per task. It compiles down to a
    {!Model.Scheduler.t} plus a {!Model.System.policy}, so any existing
    protocol runs under it unchanged.

    Silencing is an {e attempt}: preferring a service's dummy actions only
    has effect once the model enables them, i.e. once more than [f]
    endpoints of the f-resilient service have failed (§2.1.3). Network
    faults are likewise attempts — a drop on an empty buffer is vacuous and
    leaves no trace. In failure-free executions every crash/silence-only
    schedule is behaviourally empty. *)

type fault =
  | Crash of { step : int; pid : int }
      (** Deliver [fail_pid] at the first scheduling turn ≥ [step]. *)
  | Silence of { step : int; service : string }
      (** From step [step] on, prefer the dummy actions of this service. *)
  | Drop of { step : int; service : string; endpoint : int }
      (** Discard the head response buffered at [service] for [endpoint]
          (message omission). *)
  | Duplicate of { step : int; service : string; endpoint : int }
      (** Re-enqueue a copy of the head response at the tail. *)
  | Delay of { step : int; service : string; endpoint : int; lag : int }
      (** Push the head response [lag] positions back in the buffer. *)
  | Partition of { step : int; blocks : int list list; heal_at : int }
      (** From the first turn ≥ [step] until the first turn ≥ [heal_at],
          split the processes into [blocks] (processes not listed form one
          implicit residual block) and hold back cross-block delivery — the
          §6.3 reading where a service stops being connected to processes it
          cannot reach. Heals are delivered as events, making degradation
          graceful rather than terminal. *)

(** {1 Fault kinds}

    The explorer's fault-budget lattice ranges over an explicit kind set. *)

type kind = Crash_k | Silence_k | Drop_k | Dup_k | Delay_k | Partition_k

val all_kinds : kind list
val kind_of_fault : fault -> kind
val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val parse_kinds : string -> (kind list, string) result
(** Comma-separated kind names ("crash,drop,partition"; "duplicate" is
    accepted for "dup"), deduplicated, order-preserving. Errors on unknown
    names and on the empty list, naming the accepted kinds. *)

type t = {
  faults : fault list;  (** Sorted by step (stable for equal steps). *)
  default_pref : Model.System.pref;
      (** Baseline resolution for tasks not covered by a silence or an
          override. [Prefer_dummy] is the paper's adversary. *)
  overrides : (Model.Task.t * Model.System.pref) list;
      (** Per-task resolutions, taking precedence over silences and the
          default. *)
}

val crash : step:int -> pid:int -> fault
val silence : step:int -> service:string -> fault
val drop : step:int -> service:string -> endpoint:int -> fault
val duplicate : step:int -> service:string -> endpoint:int -> fault
val delay : step:int -> service:string -> endpoint:int -> lag:int -> fault
val partition : step:int -> blocks:int list list -> heal_at:int -> fault

val make :
  ?default_pref:Model.System.pref ->
  ?overrides:(Model.Task.t * Model.System.pref) list ->
  fault list ->
  t
(** [default_pref] defaults to [Prefer_dummy] (the silencing adversary). *)

val empty : t
val equal : t -> t -> bool

val compare_fault : fault -> fault -> int
(** Kind-ranked: crashes < silences < drops < duplicates < delays <
    partitions; within a kind, by step then payload. The shrinker walks
    candidates in this order, so it gives up a duplication before it weakens
    a partition. *)

val compare : t -> t -> int
(** A total order consistent with {!equal}: faults lexicographically (by
    kind, step, target), then the default adversary (silencing first — the
    enumeration default), then overrides. Used by the parallel explorer's
    merge to break ties deterministically, so reports are run-to-run
    stable. *)

val map_steps : (int -> int) -> t -> t
(** Rebase every fault's step (and partition heal edge) through the given
    monotone map, re-sorting. Heal edges are kept strictly after their
    onset, so a valid schedule stays valid. The workload engine uses this to
    translate engine-tick fault times into shot-local scheduler steps. *)

val crashes : t -> (int * int) list
(** The [(step, pid)] crash placements, in schedule order. *)

val n_crashes : t -> int
val crashed_pids : t -> int list

val n_faults : t -> int
(** Total fault count, all kinds — the budget the explorer's lattice is
    graded by. *)

val net_faults : t -> fault list
(** The network faults (drop/dup/delay/partition), in schedule order. *)

val is_crash_only : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Round-trips through {!parse}: a comma-separated fault spec, e.g.
    ["crash@0:1,drop@4:net01:1,partition@2:0|1.2:9"], prefixed with
    ["helpful,"] when [default_pref] is [Prefer_real]. Overrides are not
    representable in the string form. *)

val parse : string -> (t, string) result
(** Accepts comma/space-separated tokens: [crash@STEP:PID] (or the shorthand
    [STEP:PID]), [silence@STEP:SERVICE], [drop@STEP:SERVICE:ENDPOINT],
    [dup@STEP:SERVICE:ENDPOINT], [delay@STEP:SERVICE:ENDPOINT:LAG],
    [partition@STEP:BLOCKS:HEAL] with BLOCKS pids joined by ['.'] and blocks
    by ['|'] (e.g. [partition@2:0|1.2:9]), and the adversary markers
    [helpful] / [silencing]. Lines starting with ['#'] are ignored, so
    [--witness-out] files with trajectory annotations round-trip. *)

val validate : Model.System.t -> t -> (unit, string) result
(** Check pids are in range, silenced services exist, net-fault endpoints
    belong to their service, delay lags are ≥ 1, and partition blocks are
    nonempty, disjoint, in range, and heal after they start. *)

(** {1 Compilation} *)

type delivery =
  | Deliver_fail of int
  | Deliver_net of { service : string; endpoint : int; kind : Model.Event.net_kind }
  | Deliver_partition of { blocks : int list list; heal_at : int }
  | Deliver_heal of int list list
      (** What {!due} hands the driver at a scheduling turn. Heal deliveries
          are synthesized from [Partition] faults at compile time. *)

type compiled
(** A schedule instantiated against a system: a step-sorted delivery queue
    (crashes, net faults, partition starts and their synthesized heals),
    silence activation steps resolved to service positions, active-partition
    intervals, and the policy closure. Mutable (deliveries are consumed);
    compile afresh per run. *)

val compile : t -> Model.System.t -> compiled
(** Raises [Invalid_argument] if {!validate} fails. *)

val policy : compiled -> Model.System.policy
(** Resolution order: override, then active silence, then default. The
    policy is step-dependent through {!due}: silences activate once the
    schedule has been driven past their step. *)

val due : compiled -> step:int -> delivery option
(** The delivery for this scheduling turn, if any (consumes it). Also
    advances the schedule's clock, activating silences and partition
    intervals. Call once per turn. *)

val exhausted : compiled -> bool
(** All deliveries (crashes, net faults, heals) delivered. *)

val undelivered : compiled -> int
(** Crashes never delivered (scheduled beyond the step budget). *)

val undelivered_net : compiled -> int
(** Net faults and partition starts never delivered. *)

val fully_active : compiled -> step:int -> bool
(** No pending deliveries and every silence activated — from here on the
    compiled schedule is memoryless (all partitions healed, the policy
    frozen), so (cursor, state) repetition under a deterministic task order
    proves a lasso. *)

val separated : compiled -> int -> int -> bool
(** Whether an unhealed partition currently (at the compiled clock)
    separates the two pids into different blocks. *)

val blocked : compiled -> Model.System.t -> Model.State.t -> Model.Task.t -> bool
(** Whether an active partition holds this task back: a service-output turn
    whose endpoint's head response crossed a block boundary (for network
    packets, judged by the sender in the payload; for other services, only
    when the endpoint is isolated from every other endpoint). The driver
    turns blocked tasks into {!Model.Scheduler.Skip}. *)

val to_scheduler :
  ?quiesce:bool -> t -> Model.System.t -> Model.Scheduler.t * Model.System.policy
(** The advertised compile-down: a round-robin scheduler that injects the
    schedule's deliveries (one per turn when due), skips partition-blocked
    output turns, plus the matching policy, for use with
    {!Model.Scheduler.run}. With [quiesce] (default true) it stops after a
    full silent cycle once the schedule is exhausted, like
    {!Model.Scheduler.round_robin}. *)
