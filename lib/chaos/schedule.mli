(** First-class fault schedules (paper §2.1.3 made data).

    A fault schedule is the adversary's plan, reified: which [fail_i] inputs
    to deliver and when, which services to (attempt to) silence from which
    step, and how to resolve the real-vs-dummy nondeterminism per task. It
    compiles down to a {!Model.Scheduler.t} plus a {!Model.System.policy},
    so any existing protocol runs under it unchanged.

    Silencing is an {e attempt}: preferring a service's dummy actions only
    has effect once the model enables them, i.e. once more than [f]
    endpoints of the f-resilient service have failed (§2.1.3). In
    failure-free executions every schedule is behaviourally empty. *)

type fault =
  | Crash of { step : int; pid : int }
      (** Deliver [fail_pid] at the first scheduling turn ≥ [step]. *)
  | Silence of { step : int; service : string }
      (** From step [step] on, prefer the dummy actions of this service. *)

type t = {
  faults : fault list;  (** Sorted by step (stable for equal steps). *)
  default_pref : Model.System.pref;
      (** Baseline resolution for tasks not covered by a silence or an
          override. [Prefer_dummy] is the paper's adversary. *)
  overrides : (Model.Task.t * Model.System.pref) list;
      (** Per-task resolutions, taking precedence over silences and the
          default. *)
}

val crash : step:int -> pid:int -> fault
val silence : step:int -> service:string -> fault

val make :
  ?default_pref:Model.System.pref ->
  ?overrides:(Model.Task.t * Model.System.pref) list ->
  fault list ->
  t
(** [default_pref] defaults to [Prefer_dummy] (the silencing adversary). *)

val empty : t
val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order consistent with {!equal}: faults lexicographically (by
    kind, step, target), then the default adversary (silencing first — the
    enumeration default), then overrides. Used by the parallel explorer's
    merge to break ties deterministically, so reports are run-to-run
    stable. *)

val crashes : t -> (int * int) list
(** The [(step, pid)] crash placements, in schedule order. *)

val n_crashes : t -> int
val crashed_pids : t -> int list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Round-trips through {!parse}: a comma-separated fault spec, e.g.
    ["crash@0:1,silence@4:cons"], prefixed with ["helpful,"] when
    [default_pref] is [Prefer_real]. Overrides are not representable in the
    string form. *)

val parse : string -> (t, string) result
(** Accepts comma/space-separated tokens: [crash@STEP:PID] (or the shorthand
    [STEP:PID]), [silence@STEP:SERVICE], and the adversary markers
    [helpful] / [silencing]. *)

val validate : Model.System.t -> t -> (unit, string) result
(** Check pids are in range and silenced services exist. *)

(** {1 Compilation} *)

type compiled
(** A schedule instantiated against a system: pending crashes, silence
    activation steps resolved to service positions, and the policy closure.
    Mutable (crash delivery is consumed); compile afresh per run. *)

val compile : t -> Model.System.t -> compiled
(** Raises [Invalid_argument] if {!validate} fails. *)

val policy : compiled -> Model.System.policy
(** Resolution order: override, then active silence, then default. The
    policy is step-dependent through {!due}: silences activate once the
    schedule has been driven past their step. *)

val due : compiled -> step:int -> int option
(** The pid to crash at this scheduling turn, if any (consumes it). Also
    advances the schedule's clock, activating silences. Call once per
    turn. *)

val exhausted : compiled -> bool
(** All crashes delivered. *)

val undelivered : compiled -> int
(** Crashes never delivered (scheduled beyond the step budget). *)

val fully_active : compiled -> step:int -> bool
(** No pending crashes and every silence activated — from here on the
    compiled schedule is memoryless, so (cursor, state) repetition under a
    deterministic task order proves a lasso. *)

val to_scheduler :
  ?quiesce:bool -> t -> Model.System.t -> Model.Scheduler.t * Model.System.policy
(** The advertised compile-down: a round-robin scheduler that injects the
    schedule's crashes (one per turn when due) plus the matching policy, for
    use with {!Model.Scheduler.run}. With [quiesce] (default true) it stops
    after a full silent cycle, like {!Model.Scheduler.round_robin}. *)
