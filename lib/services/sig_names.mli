(** Shared action-name conventions for canonical services and processes.

    Every action of the complete system is an {!Ioa.Action.t} built by the
    smart constructors below, so that canonical service automata, process
    automata and the analysis tools agree on the wire format:

    - [invoke(i, k, a)] — process [i] invokes operation [a] on service [k]
      (output of the process, input of the service);
    - [respond(i, k, b)] — service [k] responds [b] to process [i];
    - [perform(i, k)], [compute(g, k)] — internal service steps;
    - [dummy_perform(i, k)], [dummy_output(i, k)], [dummy_compute(g, k)];
    - [fail(i)] — failure of process [i] (input everywhere);
    - [init(i, v)], [decide(i, v)] — the external consensus interface;
    - [step(i)] — an internal process step. *)

open Ioa

val invoke : int -> string -> Value.t -> Action.t
val respond : int -> string -> Value.t -> Action.t
val perform : int -> string -> Action.t
val compute : string -> string -> Action.t
val dummy_perform : int -> string -> Action.t
val dummy_output : int -> string -> Action.t
val dummy_compute : string -> string -> Action.t
val fail : int -> Action.t
val init : int -> Value.t -> Action.t
val decide : int -> Value.t -> Action.t
val step : int -> Action.t

val net_fault : string -> int -> string -> int -> Action.t
(** [net_fault kind endpoint service lag]: a network-adversary buffer
    mutation ("drop" / "dup" / "delay") at [service]'s response buffer for
    [endpoint]; [lag] is 0 except for delays. *)

val partition : int list list -> Action.t
(** The adversary split the processes into the given blocks. *)

val heal : int list list -> Action.t
(** The matching partition healed. *)

(** {1 Recognizers}

    Each recognizer returns the decoded payload when the action matches. *)

val as_invoke : Action.t -> (int * string * Value.t) option
val as_respond : Action.t -> (int * string * Value.t) option
val as_perform : Action.t -> (int * string) option
val as_compute : Action.t -> (string * string) option
val as_fail : Action.t -> int option
val as_init : Action.t -> (int * Value.t) option
val as_decide : Action.t -> (int * Value.t) option
val is_dummy : Action.t -> bool
