open Ioa

let triple i k x = Value.triple (Value.int i) (Value.str k) x
let invoke i k a = Action.make "invoke" (triple i k a)
let respond i k b = Action.make "respond" (triple i k b)
let perform i k = Action.make "perform" (Value.pair (Value.int i) (Value.str k))
let compute g k = Action.make "compute" (Value.pair (Value.str g) (Value.str k))
let dummy_perform i k = Action.make "dummy_perform" (Value.pair (Value.int i) (Value.str k))
let dummy_output i k = Action.make "dummy_output" (Value.pair (Value.int i) (Value.str k))
let dummy_compute g k = Action.make "dummy_compute" (Value.pair (Value.str g) (Value.str k))
let fail i = Action.make "fail" (Value.int i)
let init i v = Action.make "init" (Value.pair (Value.int i) v)
let decide i v = Action.make "decide" (Value.pair (Value.int i) v)
let step i = Action.make "step" (Value.int i)

let net_fault kind i k lag =
  Action.make ("net_" ^ kind)
    (Value.triple (Value.int i) (Value.str k) (Value.int lag))

let blocks_value blocks =
  Value.list (List.map (fun b -> Value.list (List.map Value.int b)) blocks)

let partition blocks = Action.make "partition" (blocks_value blocks)
let heal blocks = Action.make "heal" (blocks_value blocks)

let as_triple act expected =
  if String.equal (Action.name act) expected then
    let i, k, x = Value.to_triple (Action.arg act) in
    Some (Value.to_int i, Value.to_str k, x)
  else None

let as_invoke act = as_triple act "invoke"
let as_respond act = as_triple act "respond"

let as_perform act =
  if String.equal (Action.name act) "perform" then
    let i, k = Value.to_pair (Action.arg act) in
    Some (Value.to_int i, Value.to_str k)
  else None

let as_compute act =
  if String.equal (Action.name act) "compute" then
    let g, k = Value.to_pair (Action.arg act) in
    Some (Value.to_str g, Value.to_str k)
  else None

let as_fail act =
  if String.equal (Action.name act) "fail" then Some (Value.to_int (Action.arg act))
  else None

let as_pid_value act expected =
  if String.equal (Action.name act) expected then
    let i, v = Value.to_pair (Action.arg act) in
    Some (Value.to_int i, v)
  else None

let as_init act = as_pid_value act "init"
let as_decide act = as_pid_value act "decide"

let is_dummy act =
  match Action.name act with
  | "dummy_perform" | "dummy_output" | "dummy_compute" -> true
  | _ -> false
