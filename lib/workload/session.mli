(** Client sessions: at most one outstanding operation per client, with
    retry-on-timeout, exponential backoff (capped), and replica failover.

    A retry resubmits the {e same} (client, seq) command — transport-level
    at-least-once — and the replicas' idempotency tables turn that into
    exactly-once application. Responses are matched by seq, so a late
    response to an attempt that already completed is recognized as stale. *)

open Ioa

type status =
  | Think
  | Outstanding of {
      op : Value.t;
      seq : int;
      first_submit : int;
      attempts : int;
      deadline : int;
      via : int;
    }

type t = {
  id : int;
  home : int;  (** Preferred replica; failover rotates from here. *)
  mutable seq : int;
  mutable status : status;
  mutable issued : int;
  mutable completed : int;
}

val create : id:int -> home:int -> t
val is_free : t -> bool

val submit : t -> op:Value.t -> tick:int -> via:int -> timeout:int -> Cmd.t
(** Invoke the next operation. Raises if one is already outstanding. *)

val timed_out : t -> tick:int -> bool

val retry : t -> tick:int -> via:int -> timeout:int -> Cmd.t
(** Resubmit the outstanding op (same seq) with doubled-per-attempt backoff. *)

val complete : t -> seq:int -> tick:int -> (int * int) option
(** [Some (latency_ticks, attempts)] if [seq] matches the outstanding op;
    [None] for stale responses. *)

val outstanding_seq : t -> int option
val outstanding_via : t -> int option
val attempts : t -> int
