(** The serve report: counters, latency percentiles, recovery times and the
    run outcome, rendered deterministically (no wall-clock), so a seeded run
    replays byte-for-byte. *)

type outcome =
  | Served
  | Degraded of string
  | Shot_violation of {
      monitor : string;
      reason : string;
      shot : int;
      witness : string;
      minimized : string;
      candidates : int;
      runs : int;
    }
  | Lin_violation of string
  | Stalled of string
  | Inconsistent of string

type t = {
  proto : string;
  n : int;
  f : int;
  obj_name : string;
  clients : int;
  ops : int;
  seed : int;
  mutable outcome : outcome;
  mutable ticks : int;
  mutable offered : int;
  mutable completed : int;
  mutable retries : int;
  mutable resubmissions : int;
  mutable failovers : int;
  mutable lost_in_crash : int;
  mutable stale_responses : int;
  mutable shots : int;
  mutable shots_decided : int;
  mutable shots_stalled : int;
  mutable committed : int;
  mutable duplicate_commits : int;
  mutable duplicate_applications : int;
  mutable crash_faults : int;
  mutable net_faults : int;
  mutable partitions : int;
  mutable heals : int;
  mutable rejoins : int;
  mutable catch_up_replayed : int;
  mutable recovery_times : int list;
  mutable degraded_ticks : int;
  mutable final_vector : string option;
  mutable latencies : int list;
  mutable lin : Linear_inc.verdict;
  mutable lin_windows : int;
  mutable lin_events : int;
  mutable lin_max_window : int;
  mutable lin_max_frontier : int;
  mutable oracle_pinned : bool option;
}

val create :
  proto:string -> n:int -> f:int -> obj_name:string -> clients:int -> ops:int -> seed:int -> t

val exit_code : t -> int
(** 0 for [Served]/[Degraded], 1 for every violation class. *)

val pp_outcome : Format.formatter -> outcome -> unit

val latency_summary : t -> int * int * int * int
(** (p50, p95, p99, max) in ticks, nearest-rank. *)

val percentile : int array -> float -> int
(** Nearest-rank percentile over a sorted array (exposed for the bench
    kernels). *)

val render : t -> string
