(** The multi-shot RSM workload engine.

    A long-lived replicated object served on top of the §1 universal
    construction's shape: client commands are batched, each batch is
    committed by one {e consensus shot} — a monitored {!Chaos.Runner} run of
    the chosen registry protocol, with the shot system built once and its
    execution state recycled between shots — and every up replica applies the
    batch in commit order ({!Protocols.Universal.apply_log}).

    It is a robustness testbed, not just a throughput rig: a fault timeline
    (explicit {!Chaos.Schedule} or drawn from the seed) injects mid-traffic —
    crashes take replicas down (their queued commands die, clients fail over,
    and the crash also lands mid-shot so the protocol sees it in flight);
    crashed replicas rejoin by replaying the commit log at a bounded rate;
    drops/dups/delays/silences are rebased into the next shot's step space;
    partitions gate consensus at the engine level, degrading service (ops
    queue, sessions retry, {!Chaos.Degrade} tracks the live vector) instead
    of stalling, until the heal. Client sessions are retry-with-timeout-and-
    backoff with idempotent resubmission; replicas' (client, seq) tables make
    application exactly-once, re-checked independently at end of run. The
    whole client-visible history feeds the incremental linearizability
    monitor ({!Linear_inc}). Safety violations inside a shot abort the run
    and are minimized through {!Chaos.Shrink} to a 1-minimal witness;
    in-shot liveness misses are treated as stalls and absorbed by retry.

    Fully deterministic: the same config (seed included) reproduces the
    identical report byte-for-byte. *)

type config = {
  proto : string;
  params : Protocols.Registry.params;
  obj_name : string;
  clients : int;
  ops : int;
  rate : int;
  batch : int;
  pipeline : int;
  timeout : int;
  rejoin_after : int;
  catch_up_rate : int;
  seed : int;
  schedule : Chaos.Schedule.t option;
  kinds : Chaos.Schedule.kind list;
  max_faults : int;
  max_ticks : int option;
  shot_max_steps : int;
  lin_max_nodes : int;
  lin_soft : int;
  lin_hard : int;
  pin_oracle : bool;
  shrink : bool;
}

val default_config : ?proto:string -> unit -> config
(** direct, n=3 f=1, counter object, 12 clients, 200 ops, no faults. *)

val obj_of_name : string -> (Spec.Seq_type.t, string) result

val eligible : Protocols.Registry.entry -> Protocols.Registry.params -> bool
(** Whether the protocol claims single-value agreement (k = 1): the engine
    commits batches on the decided bit, so anything weaker cannot serve. *)

val run : config -> Report.t
(** Raises [Invalid_argument] on an unknown protocol, an ineligible
    protocol, or an unknown object name. *)
