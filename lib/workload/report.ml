type outcome =
  | Served
  | Degraded of string  (** Incomplete ops excused by standing damage; the live vector. *)
  | Shot_violation of {
      monitor : string;
      reason : string;
      shot : int;
      witness : string;  (** The injected shot schedule, pre-shrink. *)
      minimized : string;  (** The 1-minimal witness after {!Chaos.Shrink}. *)
      candidates : int;
      runs : int;
    }
  | Lin_violation of string
  | Stalled of string
  | Inconsistent of string

type t = {
  proto : string;
  n : int;
  f : int;
  obj_name : string;
  clients : int;
  ops : int;
  seed : int;
  mutable outcome : outcome;
  mutable ticks : int;
  (* traffic *)
  mutable offered : int;
  mutable completed : int;
  mutable retries : int;
  mutable resubmissions : int;
  mutable failovers : int;
  mutable lost_in_crash : int;
  mutable stale_responses : int;
  (* consensus shots *)
  mutable shots : int;
  mutable shots_decided : int;
  mutable shots_stalled : int;
  mutable committed : int;
  mutable duplicate_commits : int;
  mutable duplicate_applications : int;  (* must stay 0: the exactly-once check *)
  (* faults and recovery *)
  mutable crash_faults : int;
  mutable net_faults : int;
  mutable partitions : int;
  mutable heals : int;
  mutable rejoins : int;
  mutable catch_up_replayed : int;
  mutable recovery_times : int list;  (* newest first *)
  mutable degraded_ticks : int;
  mutable final_vector : string option;
  (* latency *)
  mutable latencies : int list;  (* newest first *)
  (* incremental linearizability *)
  mutable lin : Linear_inc.verdict;
  mutable lin_windows : int;
  mutable lin_events : int;
  mutable lin_max_window : int;
  mutable lin_max_frontier : int;
  mutable oracle_pinned : bool option;  (* Some b: the full-oracle pin ran *)
}

let create ~proto ~n ~f ~obj_name ~clients ~ops ~seed =
  {
    proto;
    n;
    f;
    obj_name;
    clients;
    ops;
    seed;
    outcome = Served;
    ticks = 0;
    offered = 0;
    completed = 0;
    retries = 0;
    resubmissions = 0;
    failovers = 0;
    lost_in_crash = 0;
    stale_responses = 0;
    shots = 0;
    shots_decided = 0;
    shots_stalled = 0;
    committed = 0;
    duplicate_commits = 0;
    duplicate_applications = 0;
    crash_faults = 0;
    net_faults = 0;
    partitions = 0;
    heals = 0;
    rejoins = 0;
    catch_up_replayed = 0;
    recovery_times = [];
    degraded_ticks = 0;
    final_vector = None;
    latencies = [];
    lin = Linear_inc.Ok;
    lin_windows = 0;
    lin_events = 0;
    lin_max_window = 0;
    lin_max_frontier = 0;
    oracle_pinned = None;
  }

let exit_code t =
  match t.outcome with
  | Served | Degraded _ -> 0
  | Shot_violation _ | Lin_violation _ | Stalled _ | Inconsistent _ -> 1

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let latency_summary t =
  let a = Array.of_list t.latencies in
  Array.sort Int.compare a;
  let max_l = if Array.length a = 0 then 0 else a.(Array.length a - 1) in
  percentile a 50., percentile a 95., percentile a 99., max_l

let mean_max xs =
  match xs with
  | [] -> 0., 0
  | _ ->
    let sum = List.fold_left ( + ) 0 xs in
    let mx = List.fold_left max min_int xs in
    float_of_int sum /. float_of_int (List.length xs), mx

let pp_outcome ppf = function
  | Served -> Format.fprintf ppf "SERVED"
  | Degraded vec -> Format.fprintf ppf "DEGRADED (standing damage excuses the remainder): %s" vec
  | Shot_violation { monitor; reason; shot; _ } ->
    Format.fprintf ppf "VIOLATION of %s at shot %d: %s" monitor shot reason
  | Lin_violation reason -> Format.fprintf ppf "VIOLATION of linearizability: %s" reason
  | Stalled reason -> Format.fprintf ppf "STALLED: %s" reason
  | Inconsistent reason -> Format.fprintf ppf "REPLICA DIVERGENCE: %s" reason

(* Deterministic rendering: no wall-clock anywhere, so a seeded run replays
   byte-for-byte (same contract as [boost chaos] seeded mode). *)
let render t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let p50, p95, p99, lmax = latency_summary t in
  let rec_mean, rec_max = mean_max t.recovery_times in
  Format.fprintf ppf "serve: %s n=%d f=%d obj=%s clients=%d ops=%d seed=%d@." t.proto t.n t.f
    t.obj_name t.clients t.ops t.seed;
  Format.fprintf ppf "outcome: %a@." pp_outcome t.outcome;
  (match t.outcome with
  | Shot_violation { witness; minimized; candidates; runs; _ } ->
    Format.fprintf ppf "  shot schedule: %s@." witness;
    Format.fprintf ppf "  minimized witness: %s (%d candidates, %d runs)@." minimized candidates
      runs
  | _ -> ());
  Format.fprintf ppf
    "traffic: offered %d, completed %d, retried %d (resubmitted %d, failovers %d), \
     lost-in-crash %d, stale %d@."
    t.offered t.completed t.retries t.resubmissions t.failovers t.lost_in_crash
    t.stale_responses;
  Format.fprintf ppf
    "shots: %d (decided %d, stalled %d), committed %d commands, dup-commits %d, applied twice \
     %d@."
    t.shots t.shots_decided t.shots_stalled t.committed t.duplicate_commits
    t.duplicate_applications;
  Format.fprintf ppf "faults: crash %d, net %d, partition %d, heal %d; degraded ticks %d@."
    t.crash_faults t.net_faults t.partitions t.heals t.degraded_ticks;
  Format.fprintf ppf
    "recovery: rejoins %d, catch-up replayed %d entries, rejoin latency mean %.1f max %d@."
    t.rejoins t.catch_up_replayed rec_mean rec_max;
  (match t.final_vector with
  | Some vec -> Format.fprintf ppf "degraded to: %s@." vec
  | None -> ());
  Format.fprintf ppf "latency (ticks): p50 %d p95 %d p99 %d max %d@." p50 p95 p99 lmax;
  (match t.lin with
  | Linear_inc.Ok ->
    Format.fprintf ppf "lin-monitor: ok — %d windows, %d events, max window %d, max frontier %d@."
      t.lin_windows t.lin_events t.lin_max_window t.lin_max_frontier
  | Linear_inc.Violation r -> Format.fprintf ppf "lin-monitor: VIOLATION — %s@." r
  | Linear_inc.Truncated r -> Format.fprintf ppf "lin-monitor: truncated — %s@." r);
  (match t.oracle_pinned with
  | Some true -> Format.fprintf ppf "oracle pin: ok (full Model.Linearize agrees)@."
  | Some false -> Format.fprintf ppf "oracle pin: DISAGREES with Model.Linearize@."
  | None -> ());
  if t.ticks > 0 then
    Format.fprintf ppf "throughput: %.2f ops/tick over %d ticks@."
      (float_of_int t.completed /. float_of_int t.ticks)
      t.ticks;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
