open Ioa
module L = Model.Linearize

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  proto : string;
  params : Protocols.Registry.params;
  obj_name : string;  (** "counter" | "register" *)
  clients : int;
  ops : int;
  rate : int;  (** Admissions per tick (open-loop arrival rate). *)
  batch : int;  (** Commands per consensus shot. *)
  pipeline : int;  (** Consensus shots per tick. *)
  timeout : int;  (** Session timeout, ticks. *)
  rejoin_after : int;  (** Ticks a crashed replica stays down before recovering. *)
  catch_up_rate : int;  (** Commit-log entries replayed per tick while recovering. *)
  seed : int;
  schedule : Chaos.Schedule.t option;
      (** Explicit fault timeline (steps are engine ticks); [None] draws one
          from the seed. *)
  kinds : Chaos.Schedule.kind list;
  max_faults : int;
  max_ticks : int option;
  shot_max_steps : int;
  lin_max_nodes : int;
  lin_soft : int;
  lin_hard : int;
  pin_oracle : bool;
  shrink : bool;
}

let default_config ?(proto = "direct") () =
  {
    proto;
    params = { Protocols.Registry.default_params with n = 3; f = 1 };
    obj_name = "counter";
    clients = 12;
    ops = 200;
    rate = 8;
    batch = 16;
    pipeline = 2;
    timeout = 8;
    rejoin_after = 25;
    catch_up_rate = 32;
    seed = 0;
    schedule = None;
    kinds = [];
    max_faults = 0;
    max_ticks = None;
    shot_max_steps = 4000;
    lin_max_nodes = 200_000;
    lin_soft = 4;
    lin_hard = 2048;
    pin_oracle = false;
    shrink = true;
  }

let obj_of_name = function
  | "counter" -> Ok (Spec.Seq_counter.make ())
  | "register" ->
    Ok (Spec.Seq_register.make ~values:(List.init 4 Value.int) ~initial:(Value.int 0))
  | other -> Error (Printf.sprintf "unknown object %S (expected counter or register)" other)

(* Serve eligibility: the engine commits batches on the decided bit, so the
   protocol must actually claim single-value agreement (that is what the tob
   run then refutes under its Thm 9 fault). *)
let eligible (entry : Protocols.Registry.entry) params =
  entry.Protocols.Registry.k_of params = 1
  && (entry.Protocols.Registry.claims params).Analysis.Guarantee.agreement = Some 1

(* ------------------------------------------------------------------ *)
(* Engine state                                                       *)
(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  sys : Model.System.t;  (* the shot system, built once and reused *)
  obj : Spec.Seq_type.t;
  n : int;
  n_tasks : int;
  report : Report.t;
  replicas : Replica.t array;
  sessions : Session.t array;
  mutable log : Cmd.t array;  (* commit log, grown geometrically *)
  mutable log_len : int;
  mutable pending : (Cmd.t * int) list;  (* FIFO of (command, via-replica) *)
  mutable timeline : Chaos.Schedule.fault list;  (* due-sorted, steps = ticks *)
  mutable stash : Chaos.Schedule.fault list;  (* net/crash faults awaiting a shot *)
  mutable active_partitions : (int list list * int) list;  (* (blocks, heal_at) *)
  mutable damage : Chaos.Degrade.t;
  mutable any_damage : bool;
  mutable deliveries : (int * int * Value.t) list;  (* (client, seq, resp) for next tick *)
  mutable next_client : int;
  mutable consecutive_stalls : int;
  mutable backoff_until : int;
  lin : Linear_inc.t;
  mutable full_history : L.event list;  (* newest first; only with pin_oracle *)
  op_rng : Random.State.t;
  mutable stopped : bool;
}

let log_push st cmd =
  if st.log_len = Array.length st.log then begin
    let bigger = Array.make (max 64 (2 * st.log_len)) cmd in
    Array.blit st.log 0 bigger 0 st.log_len;
    st.log <- bigger
  end;
  st.log.(st.log_len) <- cmd;
  st.log_len <- st.log_len + 1

let log_slice st = Array.sub st.log 0 st.log_len

let draw_op st =
  if String.equal st.cfg.obj_name "register" then
    if Random.State.int st.op_rng 2 = 0 then
      Spec.Seq_register.write (Value.int (Random.State.int st.op_rng 4))
    else Spec.Seq_register.read
  else if Random.State.int st.op_rng 4 = 0 then Spec.Seq_counter.read
  else Spec.Seq_counter.increment

let record_event st ev =
  Linear_inc.record st.lin ev;
  if st.cfg.pin_oracle then st.full_history <- ev :: st.full_history

(* First Up replica at or after [from] (mod n); [None] if all are down. *)
let route st ~from =
  let rec go k = if k >= st.n then None
    else
      let r = (from + k) mod st.n in
      if Replica.is_up st.replicas.(r) then Some r else go (k + 1)
  in
  go 0

let up_count st = Array.fold_left (fun k r -> if Replica.is_up r then k + 1 else k) 0 st.replicas

let separated_up_pair st =
  Chaos.Degrade.partition_active st.damage
  && Array.exists
       (fun (a : Replica.t) ->
         Replica.is_up a
         && Array.exists
              (fun (b : Replica.t) ->
                Replica.is_up b && Chaos.Degrade.separated st.damage a.Replica.id b.Replica.id)
              st.replicas)
       st.replicas

(* ------------------------------------------------------------------ *)
(* Fault timeline delivery (engine-level)                             *)
(* ------------------------------------------------------------------ *)

let fault_step = function
  | Chaos.Schedule.Crash { step; _ }
  | Chaos.Schedule.Silence { step; _ }
  | Chaos.Schedule.Drop { step; _ }
  | Chaos.Schedule.Duplicate { step; _ }
  | Chaos.Schedule.Delay { step; _ }
  | Chaos.Schedule.Partition { step; _ } -> step

let deliver_faults st ~tick =
  let due, later = List.partition (fun f -> fault_step f <= tick) st.timeline in
  st.timeline <- later;
  List.iter
    (fun fault ->
      st.any_damage <- true;
      match fault with
      | Chaos.Schedule.Crash { pid; _ } ->
        let r = st.replicas.(pid) in
        if Replica.is_up r || r.Replica.status = Replica.Recovering then begin
          Replica.crash r ~tick ~rejoin_at:(tick + st.cfg.rejoin_after);
          st.damage <- Chaos.Degrade.crash st.damage pid;
          st.report.Report.crash_faults <- st.report.Report.crash_faults + 1;
          (* The replica's queued-but-uncommitted commands die with it. *)
          let kept, lost = List.partition (fun (_, via) -> via <> pid) st.pending in
          st.pending <- kept;
          st.report.Report.lost_in_crash <-
            st.report.Report.lost_in_crash + List.length lost;
          (* Let the crash also land mid-shot, so the consensus protocol
             sees it in-flight rather than only at shot start. *)
          st.stash <- st.stash @ [ fault ]
        end
      | Chaos.Schedule.Partition { blocks; heal_at; _ } ->
        st.active_partitions <- st.active_partitions @ [ blocks, heal_at ];
        st.damage <- Chaos.Degrade.partition st.damage blocks;
        st.report.Report.partitions <- st.report.Report.partitions + 1
      | Chaos.Schedule.Drop { service; endpoint; _ } ->
        st.damage <- Chaos.Degrade.mutate st.damage ~service ~endpoint ~kind:Model.Event.Drop;
        st.report.Report.net_faults <- st.report.Report.net_faults + 1;
        st.stash <- st.stash @ [ fault ]
      | Chaos.Schedule.Duplicate { service; endpoint; _ } ->
        st.damage <-
          Chaos.Degrade.mutate st.damage ~service ~endpoint ~kind:Model.Event.Duplicate;
        st.report.Report.net_faults <- st.report.Report.net_faults + 1;
        st.stash <- st.stash @ [ fault ]
      | Chaos.Schedule.Delay { service; endpoint; lag; _ } ->
        st.damage <-
          Chaos.Degrade.mutate st.damage ~service ~endpoint ~kind:(Model.Event.Delay lag);
        st.report.Report.net_faults <- st.report.Report.net_faults + 1;
        st.stash <- st.stash @ [ fault ]
      | Chaos.Schedule.Silence _ -> st.stash <- st.stash @ [ fault ])
    due;
  (* Heals. *)
  let healed, still = List.partition (fun (_, heal_at) -> heal_at <= tick) st.active_partitions in
  st.active_partitions <- still;
  List.iter
    (fun (blocks, _) ->
      st.damage <- Chaos.Degrade.heal st.damage blocks;
      st.report.Report.heals <- st.report.Report.heals + 1;
      st.consecutive_stalls <- 0;
      st.backoff_until <- 0)
    healed

let recovery_progress st ~tick =
  Array.iter
    (fun (r : Replica.t) ->
      match r.Replica.status with
      | Replica.Down { rejoin_at } when rejoin_at <= tick -> Replica.start_recovery r
      | _ -> ())
    st.replicas;
  Array.iter
    (fun (r : Replica.t) ->
      if r.Replica.status = Replica.Recovering then begin
        let before = r.Replica.replayed in
        (match Replica.catch_up r ~log:(log_slice st) ~rate:st.cfg.catch_up_rate with
        | `Caught_up ->
          st.damage <- Chaos.Degrade.uncrash st.damage r.Replica.id;
          st.report.Report.rejoins <- st.report.Report.rejoins + 1;
          st.report.Report.recovery_times <-
            (tick - r.Replica.crashed_at) :: st.report.Report.recovery_times;
          st.consecutive_stalls <- 0;
          st.backoff_until <- 0
        | `Recovering -> ());
        st.report.Report.catch_up_replayed <-
          st.report.Report.catch_up_replayed + (r.Replica.replayed - before)
      end)
    st.replicas

(* ------------------------------------------------------------------ *)
(* Traffic: deliveries, arrivals, retries                             *)
(* ------------------------------------------------------------------ *)

let deliver_responses st ~tick =
  let due = st.deliveries in
  st.deliveries <- [];
  List.iter
    (fun (client, seq, resp) ->
      match Session.complete st.sessions.(client) ~seq ~tick with
      | Some (latency, _attempts) ->
        st.report.Report.completed <- st.report.Report.completed + 1;
        st.report.Report.latencies <- latency :: st.report.Report.latencies;
        record_event st (L.Return { endpoint = client; resp })
      | None -> st.report.Report.stale_responses <- st.report.Report.stale_responses + 1)
    due

let total_issued st = Array.fold_left (fun k s -> k + s.Session.issued) 0 st.sessions

let busy_sessions st =
  Array.fold_left (fun k s -> if Session.is_free s then k else k + 1) 0 st.sessions

let submit_cmd st session ~tick =
  let op = draw_op st in
  let via =
    match route st ~from:session.Session.home with
    | Some r -> r
    | None -> -1  (* every replica down: the op is invoked but goes nowhere *)
  in
  let cmd = Session.submit session ~op ~tick ~via ~timeout:st.cfg.timeout in
  st.report.Report.offered <- st.report.Report.offered + 1;
  if via >= 0 && via <> session.Session.home then
    st.report.Report.failovers <- st.report.Report.failovers + 1;
  record_event st (L.Call { endpoint = session.Session.id; op });
  if via >= 0 then st.pending <- st.pending @ [ cmd, via ]

let arrivals st ~tick =
  let admitted = ref 0 in
  let issued = ref (total_issued st) in
  let busy = ref (busy_sessions st) in
  let scanned = ref 0 in
  while
    !admitted < st.cfg.rate && !issued < st.cfg.ops && !busy < st.cfg.lin_soft
    && !scanned < Array.length st.sessions
  do
    let s = st.sessions.(st.next_client mod Array.length st.sessions) in
    st.next_client <- st.next_client + 1;
    incr scanned;
    if Session.is_free s then begin
      submit_cmd st s ~tick;
      incr admitted;
      incr issued;
      incr busy;
      scanned := 0
    end
  done

let retries st ~tick =
  Array.iter
    (fun s ->
      if Session.timed_out s ~tick then begin
        let from =
          match Session.outstanding_via s with
          | Some via when via >= 0 -> (via + 1) mod st.n
          | _ -> s.Session.home
        in
        let via = match route st ~from with Some r -> r | None -> -1 in
        let cmd = Session.retry s ~tick ~via ~timeout:st.cfg.timeout in
        st.report.Report.retries <- st.report.Report.retries + 1;
        if via >= 0 then begin
          st.report.Report.resubmissions <- st.report.Report.resubmissions + 1;
          st.pending <- st.pending @ [ cmd, via ]
        end
      end)
    st.sessions

(* ------------------------------------------------------------------ *)
(* Consensus shots                                                    *)
(* ------------------------------------------------------------------ *)

(* The in-shot schedule for one consensus shot: replicas already down crash
   at step 0; stashed timeline faults (mid-traffic crashes, drops, dups,
   delays, silences) are rebased from engine ticks into the shot's own step
   space via {!Chaos.Schedule.map_steps}. *)
let shot_schedule st =
  let span = max 1 (3 * st.n_tasks) in
  let stashed = Chaos.Schedule.make st.stash in
  let stash_crashes = Chaos.Schedule.crashed_pids stashed in
  let down_crashes =
    Array.to_list st.replicas
    |> List.filter_map (fun (r : Replica.t) ->
           if (not (Replica.is_up r)) && not (List.mem r.Replica.id stash_crashes) then
             Some (Chaos.Schedule.crash ~step:0 ~pid:r.Replica.id)
           else None)
  in
  let rebased = Chaos.Schedule.map_steps (fun s -> 1 + (s mod span)) stashed in
  st.stash <- [];
  Chaos.Schedule.make (down_crashes @ rebased.Chaos.Schedule.faults)

(* Candidate-bit input encoding: registry protocols take binary inputs, so a
   shot elects between (at most) two candidate leader replicas — the two
   lowest Up pids. Process c1 proposes 1, everyone else proposes 0; validity
   guarantees the decided bit names a real candidate. *)
let shot_inputs st =
  let ups =
    Array.to_list st.replicas
    |> List.filter_map (fun (r : Replica.t) ->
           if Replica.is_up r then Some r.Replica.id else None)
  in
  let c1 = match ups with _ :: b :: _ -> Some b | _ -> None in
  let c0 = match ups with a :: _ -> a | [] -> 0 in
  let inputs =
    List.init st.n (fun i -> Value.int (if Some i = c1 then 1 else 0))
  in
  c0, Option.value c1 ~default:c0, inputs

type shot_outcome =
  | Shot_committed of int  (* leader replica *)
  | Shot_stalled
  | Shot_violated of Chaos.Explore.violation * Value.t list

let run_shot st ~schedule ~inputs ~c0 ~c1 =
  let monitors = Chaos.Monitor.defaults () in
  let result =
    Chaos.Runner.run ~monitors ~max_steps:st.cfg.shot_max_steps ~inputs ~schedule st.sys
  in
  st.report.Report.shots <- st.report.Report.shots + 1;
  let committed_or_stalled exec =
    match Model.Exec.decide_events exec with
    | [] -> Shot_stalled
    | (_, v) :: _ -> Shot_committed (if Value.equal v (Value.int 1) then c1 else c0)
  in
  match result.Chaos.Runner.stop with
  | Chaos.Runner.Violation { monitor; reason; proven } ->
    if String.equal monitor "f-termination" then
      (* A liveness miss inside one shot is a stall, not corruption: the
         engine's own retry/degrade machinery is the recovery pattern. If
         someone did decide, that decision is still a safe commit (every
         safety monitor passed). *)
      committed_or_stalled result.Chaos.Runner.exec
    else
      Shot_violated
        ( {
            Chaos.Explore.schedule;
            monitor;
            reason;
            proven;
            exec = result.Chaos.Runner.exec;
            steps = result.Chaos.Runner.steps;
            degraded_to = None;
          },
          inputs )
  | Chaos.Runner.Lasso _ | Chaos.Runner.Budget | Chaos.Runner.Pruned ->
    committed_or_stalled result.Chaos.Runner.exec

let commit_batch st ~leader batch =
  List.iter (fun cmd -> log_push st cmd) batch;
  (* Every Up replica applies the batch; the leader's responses are the ones
     sent back to clients. Divergence between replicas is a hard failure. *)
  let leader_r = st.replicas.(leader) in
  let lead_resps =
    List.map
      (fun cmd ->
        match Replica.apply_cmd leader_r cmd with
        | `Applied resp -> resp
        | `Duplicate resp ->
          st.report.Report.duplicate_commits <- st.report.Report.duplicate_commits + 1;
          resp)
      batch
  in
  Array.iter
    (fun (r : Replica.t) ->
      if Replica.is_up r && r.Replica.id <> leader then
        List.iter2
          (fun cmd lead ->
            let resp =
              match Replica.apply_cmd r cmd with `Applied v | `Duplicate v -> v
            in
            if not (Value.equal lead resp) then begin
              st.stopped <- true;
              st.report.Report.outcome <-
                Report.Inconsistent
                  (Format.asprintf "replica %d response %a differs from leader %a for %a"
                     r.Replica.id Value.pp resp Value.pp lead Cmd.pp cmd)
            end)
          batch lead_resps)
    st.replicas;
  st.report.Report.committed <- st.report.Report.committed + List.length batch;
  (* Responses reach clients next tick. *)
  List.iter2
    (fun cmd resp -> st.deliveries <- st.deliveries @ [ cmd.Cmd.client, cmd.Cmd.seq, resp ])
    batch lead_resps

let take_batch st =
  let rec go k acc rest =
    if k = 0 then List.rev acc, rest
    else match rest with [] -> List.rev acc, [] | (cmd, _) :: tl -> go (k - 1) (cmd :: acc) tl
  in
  let batch, rest = go st.cfg.batch [] st.pending in
  st.pending <- rest;
  batch

let shots st ~tick =
  if st.pending = [] then ()
  else if tick < st.backoff_until then ()
  else if separated_up_pair st || st.n - up_count st > st.cfg.params.Protocols.Registry.f then
    (* Consensus cannot safely proceed: degrade (keep queueing, keep
       retrying) instead of stalling the whole engine. *)
    st.report.Report.degraded_ticks <- st.report.Report.degraded_ticks + 1
  else begin
    let launched = ref 0 in
    while (not st.stopped) && !launched < st.cfg.pipeline && st.pending <> [] do
      incr launched;
      let schedule = shot_schedule st in
      let c0, c1, inputs = shot_inputs st in
      let batch = take_batch st in
      match run_shot st ~schedule ~inputs ~c0 ~c1 with
      | Shot_committed leader ->
        st.report.Report.shots_decided <- st.report.Report.shots_decided + 1;
        st.consecutive_stalls <- 0;
        commit_batch st ~leader batch
      | Shot_stalled ->
        st.report.Report.shots_stalled <- st.report.Report.shots_stalled + 1;
        (* The batch goes back to the queue head; back off exponentially. *)
        st.pending <- List.map (fun c -> c, -1) batch @ st.pending;
        st.consecutive_stalls <- st.consecutive_stalls + 1;
        st.backoff_until <- tick + (1 lsl min st.consecutive_stalls 6);
        launched := st.cfg.pipeline
      | Shot_violated (violation, vinputs) ->
        st.stopped <- true;
        let witness = Chaos.Schedule.to_string violation.Chaos.Explore.schedule in
        let minimized, stats =
          if st.cfg.shrink then
            let v, stats =
              Chaos.Shrink.shrink ~monitors:(Chaos.Monitor.defaults ())
                ~max_steps:st.cfg.shot_max_steps ~inputs:vinputs st.sys violation
            in
            Chaos.Schedule.to_string v.Chaos.Explore.schedule, stats
          else witness, { Chaos.Shrink.candidates = 0; runs = 0 }
        in
        st.report.Report.outcome <-
          Report.Shot_violation
            {
              monitor = violation.Chaos.Explore.monitor;
              reason = violation.Chaos.Explore.reason;
              shot = st.report.Report.shots;
              witness;
              minimized;
              candidates = stats.Chaos.Shrink.candidates;
              runs = stats.Chaos.Shrink.runs;
            }
    done
  end

(* ------------------------------------------------------------------ *)
(* End-of-run checks                                                  *)
(* ------------------------------------------------------------------ *)

let final_checks st =
  (* Cross-replica consistency: every caught-up replica must agree with a
     from-scratch replay of the commit log (the catch-up path itself). *)
  let fresh = Replica.create ~id:(-1) ~obj:st.obj in
  Array.iter (fun cmd -> ignore (Replica.apply_cmd fresh cmd)) (log_slice st);
  Array.iter
    (fun (r : Replica.t) ->
      if Replica.is_up r && r.Replica.applied = st.log_len then
        if not (Value.equal r.Replica.value fresh.Replica.value) then begin
          st.report.Report.outcome <-
            Report.Inconsistent
              (Format.asprintf "replica %d value %a differs from log replay %a" r.Replica.id
                 Value.pp r.Replica.value Value.pp fresh.Replica.value)
        end)
    st.replicas;
  (* The exactly-once check, re-derived independently of the live dedup
     tables: applications performed by a from-scratch replay minus distinct
     (client, seq) pairs in the log. Zero iff every pair mutated the object
     exactly once no matter how many log entries carried it. *)
  let seen = Replica.Tbl.create 256 in
  Array.iter (fun cmd -> Replica.Tbl.replace seen (Cmd.key cmd) ()) (log_slice st);
  let applications = st.log_len - fresh.Replica.duplicates_skipped in
  st.report.Report.duplicate_applications <- applications - Replica.Tbl.length seen;
  (* Incremental linearizability: final flush, then the oracle pin. *)
  (match Linear_inc.finish st.lin with
  | Linear_inc.Violation reason ->
    if st.report.Report.outcome = Report.Served then
      st.report.Report.outcome <- Report.Lin_violation reason
  | Linear_inc.Ok | Linear_inc.Truncated _ -> ());
  if st.cfg.pin_oracle then begin
    let oracle = L.check st.obj (List.rev st.full_history) in
    let incremental = Linear_inc.verdict st.lin = Linear_inc.Ok in
    st.report.Report.oracle_pinned <- Some (oracle = incremental)
  end;
  if st.any_damage then
    st.report.Report.final_vector <-
      Some (Analysis.Gvector.to_string (Chaos.Degrade.live_vector st.sys st.damage))

(* ------------------------------------------------------------------ *)
(* The run                                                            *)
(* ------------------------------------------------------------------ *)

let standing_excuse st =
  st.active_partitions <> []
  || Array.exists (fun (r : Replica.t) -> not (Replica.is_up r)) st.replicas
  || st.timeline <> []

let run cfg =
  let entry =
    match Protocols.Registry.find cfg.proto with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Workload.Engine: unknown protocol %S" cfg.proto)
  in
  if not (eligible entry cfg.params) then
    invalid_arg
      (Printf.sprintf
         "Workload.Engine: %s does not claim single-value agreement; serve needs a consensus \
          protocol"
         cfg.proto);
  let obj =
    match obj_of_name cfg.obj_name with
    | Ok obj -> obj
    | Error e -> invalid_arg ("Workload.Engine: " ^ e)
  in
  let sys = entry.Protocols.Registry.build cfg.params in
  let n = Model.System.n_processes sys in
  let est_serving_ticks = max 20 (cfg.ops * 2 / max 1 cfg.rate) in
  let max_ticks =
    match cfg.max_ticks with
    | Some t -> t
    | None -> (10 * cfg.ops / max 1 cfg.rate) + 50 * cfg.rejoin_after + 500
  in
  let timeline =
    match cfg.schedule with
    | Some s -> s.Chaos.Schedule.faults
    | None ->
      if cfg.max_faults = 0 || cfg.kinds = [] then []
      else
        (Chaos.Rand.schedule ~seed:cfg.seed ~max_faults:cfg.max_faults ~silence_prob:0.
           ~horizon:est_serving_ticks ~kinds:cfg.kinds sys)
          .Chaos.Schedule.faults
  in
  let report =
    Report.create ~proto:cfg.proto ~n ~f:cfg.params.Protocols.Registry.f ~obj_name:cfg.obj_name
      ~clients:cfg.clients ~ops:cfg.ops ~seed:cfg.seed
  in
  let st =
    {
      cfg;
      sys;
      obj;
      n;
      n_tasks = Array.length sys.Model.System.tasks;
      report;
      replicas = Array.init n (fun id -> Replica.create ~id ~obj);
      sessions = Array.init cfg.clients (fun id -> Session.create ~id ~home:(id mod n));
      log = [||];
      log_len = 0;
      pending = [];
      timeline =
        List.stable_sort (fun a b -> Int.compare (fault_step a) (fault_step b)) timeline;
      stash = [];
      active_partitions = [];
      damage = Chaos.Degrade.empty;
      any_damage = false;
      deliveries = [];
      next_client = 0;
      consecutive_stalls = 0;
      backoff_until = 0;
      lin = Linear_inc.create ~max_nodes:cfg.lin_max_nodes ~soft_outstanding:cfg.lin_soft
          ~hard_buffer:cfg.lin_hard obj;
      full_history = [];
      op_rng = Random.State.make [| cfg.seed; 0xF00D |];
      stopped = false;
    }
  in
  let tick = ref 0 in
  let finished () = st.report.Report.completed >= cfg.ops in
  while (not st.stopped) && (not (finished ())) && !tick < max_ticks do
    deliver_faults st ~tick:!tick;
    recovery_progress st ~tick:!tick;
    deliver_responses st ~tick:!tick;
    arrivals st ~tick:!tick;
    retries st ~tick:!tick;
    shots st ~tick:!tick;
    (match Linear_inc.tick st.lin with
    | Linear_inc.Violation reason ->
      if not st.stopped then begin
        st.stopped <- true;
        st.report.Report.outcome <- Report.Lin_violation reason
      end
    | Linear_inc.Ok | Linear_inc.Truncated _ -> ());
    incr tick
  done;
  st.report.Report.ticks <- !tick;
  if (not st.stopped) && not (finished ()) then begin
    let incomplete = cfg.ops - st.report.Report.completed in
    if standing_excuse st then
      st.report.Report.outcome <-
        Report.Degraded
          (Printf.sprintf "%d ops incomplete under %s" incomplete
             (Analysis.Gvector.to_string (Chaos.Degrade.live_vector st.sys st.damage)))
    else
      st.report.Report.outcome <-
        Report.Stalled
          (Printf.sprintf "%d ops incomplete at tick %d with no standing damage" incomplete
             !tick)
  end;
  (match st.report.Report.outcome with
  | Report.Served | Report.Degraded _ -> final_checks st
  | _ -> ());
  st.report.Report.lin <- Linear_inc.verdict st.lin;
  st.report.Report.lin_windows <- Linear_inc.windows st.lin;
  st.report.Report.lin_events <- Linear_inc.events st.lin;
  st.report.Report.lin_max_window <- Linear_inc.max_window st.lin;
  st.report.Report.lin_max_frontier <- Linear_inc.max_frontier st.lin;
  st.report
