module L = Model.Linearize

type verdict = Ok | Violation of string | Truncated of string

type t = {
  obj : Spec.Seq_type.t;
  max_nodes : int;
  soft_outstanding : int;
  hard_buffer : int;
  mutable frontier : L.config list;
  mutable buffer : L.event list;  (* newest first *)
  mutable buffered : int;
  mutable outstanding : int;
  mutable windows : int;
  mutable events : int;
  mutable max_window : int;
  mutable max_frontier : int;
  mutable verdict : verdict;
}

let create ?(max_nodes = 200_000) ?(soft_outstanding = 4) ?(hard_buffer = 2048) obj =
  {
    obj;
    max_nodes;
    soft_outstanding;
    hard_buffer;
    frontier = L.init_configs obj;
    buffer = [];
    buffered = 0;
    outstanding = 0;
    windows = 0;
    events = 0;
    max_window = 0;
    max_frontier = List.length (L.init_configs obj);
    verdict = Ok;
  }

let verdict t = t.verdict
let windows t = t.windows
let events t = t.events
let max_window t = t.max_window
let max_frontier t = t.max_frontier
let outstanding t = t.outstanding

let record t ev =
  if t.verdict = Ok then begin
    t.buffer <- ev :: t.buffer;
    t.buffered <- t.buffered + 1;
    t.events <- t.events + 1;
    (match ev with
    | L.Call _ -> t.outstanding <- t.outstanding + 1
    | L.Return _ -> t.outstanding <- t.outstanding - 1)
  end

let flush t =
  (match t.verdict with
  | Violation _ | Truncated _ -> ()
  | Ok ->
    if t.buffered > 0 then begin
      let window = List.rev t.buffer in
      t.buffer <- [];
      let size = t.buffered in
      t.buffered <- 0;
      t.windows <- t.windows + 1;
      t.max_window <- max t.max_window size;
      match L.advance ~max_nodes:t.max_nodes t.obj t.frontier window with
      | None ->
        t.verdict <-
          Truncated
            (Printf.sprintf "window %d (%d events) exhausted the %d-node search budget"
               t.windows size t.max_nodes)
      | Some [] ->
        t.verdict <-
          Violation
            (Printf.sprintf
               "window %d (%d events, through event %d) admits no linearization" t.windows
               size t.events)
      | Some frontier ->
        t.frontier <- frontier;
        t.max_frontier <- max t.max_frontier (List.length frontier)
    end);
  t.verdict

(* The flush policy: the frontier stays small when few operations straddle
   the window boundary (each called-but-unreturned op multiplies the
   reachable configurations), so defer flushing until the history is nearly
   quiescent — but never let the buffer grow past [hard_buffer], accepting a
   possible truncation instead of unbounded memory. *)
let tick t =
  if
    t.verdict = Ok && t.buffered > 0
    && (t.outstanding <= t.soft_outstanding || t.buffered >= t.hard_buffer)
  then flush t
  else t.verdict

let finish t = flush t
