open Ioa

type status =
  | Think
  | Outstanding of {
      op : Value.t;
      seq : int;
      first_submit : int;
      attempts : int;
      deadline : int;
      via : int;  (** Replica the live attempt was sent to; -1 = unreachable. *)
    }

type t = {
  id : int;
  home : int;
  mutable seq : int;
  mutable status : status;
  mutable issued : int;
  mutable completed : int;
}

let create ~id ~home = { id; home; seq = 0; status = Think; issued = 0; completed = 0 }

let is_free s = s.status = Think

let submit s ~op ~tick ~via ~timeout =
  (match s.status with
  | Think -> ()
  | Outstanding _ -> invalid_arg "Workload.Session.submit: op already outstanding");
  let seq = s.seq in
  s.seq <- seq + 1;
  s.issued <- s.issued + 1;
  s.status <-
    Outstanding { op; seq; first_submit = tick; attempts = 1; deadline = tick + timeout; via };
  { Cmd.client = s.id; seq; op }

let timed_out s ~tick =
  match s.status with Outstanding o -> tick >= o.deadline | Think -> false

(* Exponential backoff, capped so a long outage cannot push the deadline
   past any practical horizon. *)
let retry s ~tick ~via ~timeout =
  match s.status with
  | Think -> invalid_arg "Workload.Session.retry: no outstanding op"
  | Outstanding o ->
    let attempts = o.attempts + 1 in
    let backoff = timeout * (1 lsl min (attempts - 1) 6) in
    s.status <- Outstanding { o with attempts; deadline = tick + backoff; via };
    { Cmd.client = s.id; seq = o.seq; op = o.op }

(* Completion is keyed by seq: a response to an older (already completed)
   attempt is stale and must be ignored by the caller. *)
let complete s ~seq ~tick =
  match s.status with
  | Outstanding o when o.seq = seq ->
    s.status <- Think;
    s.completed <- s.completed + 1;
    Some (tick - o.first_submit, o.attempts)
  | _ -> None

let outstanding_seq s = match s.status with Outstanding o -> Some o.seq | Think -> None
let outstanding_via s = match s.status with Outstanding o -> Some o.via | Think -> None
let attempts s = match s.status with Outstanding o -> o.attempts | Think -> 0
