(** One replica of the long-lived replicated object.

    A replica's volatile state — object value, position in the commit log,
    and the (client, seq) idempotency table — is lost on crash and rebuilt
    by {e catch-up}: replaying the commit log from the start at a bounded
    rate per tick ({!Protocols.Universal.apply_log} iterated). Because
    replay runs the identical deterministic apply (duplicates skipped by the
    same rule), a caught-up replica is byte-equal to one that never crashed;
    the engine asserts this cross-replica consistency at end of run. *)

open Ioa

type status = Up | Down of { rejoin_at : int } | Recovering

module Tbl : Hashtbl.S with type key = int * int
(** Keyed by {!Cmd.key}. *)

type t = {
  id : int;
  obj : Spec.Seq_type.t;
  mutable status : status;
  mutable value : Value.t;
  mutable applied : int;
  mutable dedup : Value.t Tbl.t;
  mutable duplicates_skipped : int;
  mutable crashes : int;
  mutable crashed_at : int;
  mutable replayed : int;
}

val create : id:int -> obj:Spec.Seq_type.t -> t
val is_up : t -> bool

val apply_cmd : t -> Cmd.t -> [ `Applied of Value.t | `Duplicate of Value.t ]
(** Apply one commit-log entry; [`Duplicate] re-reads the cached response
    without touching the object (exactly-once). *)

val crash : t -> tick:int -> rejoin_at:int -> unit
val start_recovery : t -> unit

val catch_up : t -> log:Cmd.t array -> rate:int -> [ `Caught_up | `Recovering ]
(** Replay up to [rate] entries; [`Caught_up] flips the replica to [Up]. *)

val cached_response : t -> Cmd.t -> Value.t option
