(** A client command: one operation of the replicated object, identified by
    the (client, sequence-number) pair. The pair is the idempotency key —
    retransmissions carry the same pair, and replicas apply each pair at most
    once no matter how many log entries carry it. *)

open Ioa

type t = { client : int; seq : int; op : Value.t }

val key : t -> int * int
val pp : Format.formatter -> t -> unit
