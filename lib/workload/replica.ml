open Ioa

type status = Up | Down of { rejoin_at : int } | Recovering

module Key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x10001) lxor b
end

module Tbl = Hashtbl.Make (Key)

type t = {
  id : int;
  obj : Spec.Seq_type.t;
  mutable status : status;
  mutable value : Value.t;
  mutable applied : int;  (* commit-log entries applied so far *)
  mutable dedup : Value.t Tbl.t;  (* (client, seq) -> response *)
  mutable duplicates_skipped : int;
  mutable crashes : int;
  mutable crashed_at : int;
  mutable replayed : int;  (* total catch-up entries replayed *)
}

let initial_value obj = List.hd obj.Spec.Seq_type.initials

let create ~id ~obj =
  {
    id;
    obj;
    status = Up;
    value = initial_value obj;
    applied = 0;
    dedup = Tbl.create 64;
    duplicates_skipped = 0;
    crashes = 0;
    crashed_at = 0;
    replayed = 0;
  }

let is_up r = r.status = Up

(* Apply one commit-log entry: the idempotency table makes re-committed
   (client, seq) pairs no-ops, so every pair changes the object at most once
   no matter how many log entries carry it. Deterministic — every replica
   skips exactly the same entries. *)
let apply_cmd r (c : Cmd.t) =
  let key = Cmd.key c in
  match Tbl.find_opt r.dedup key with
  | Some resp ->
    r.duplicates_skipped <- r.duplicates_skipped + 1;
    r.applied <- r.applied + 1;
    `Duplicate resp
  | None ->
    let resp, value = Spec.Seq_type.apply r.obj c.Cmd.op r.value in
    r.value <- value;
    Tbl.replace r.dedup key resp;
    r.applied <- r.applied + 1;
    `Applied resp

(* A crash loses all volatile state: object value, applied position and the
   idempotency table. Catch-up rebuilds all three from the commit log. *)
let crash r ~tick ~rejoin_at =
  r.status <- Down { rejoin_at };
  r.value <- initial_value r.obj;
  r.applied <- 0;
  r.dedup <- Tbl.create 64;
  r.crashes <- r.crashes + 1;
  r.crashed_at <- tick

let start_recovery r = r.status <- Recovering

(* Replay up to [rate] commit-log entries. Returns [`Caught_up] when the
   replica has applied the whole log — the rejoin point; its state is then
   byte-equal to a replica that never crashed, because replay runs the same
   deterministic apply (dedup included) a live replica ran incrementally. *)
let catch_up r ~log ~rate =
  let target = Array.length log in
  let before = r.applied in
  let stop = min target (before + rate) in
  while r.applied < stop do
    ignore (apply_cmd r log.(r.applied))
  done;
  r.replayed <- r.replayed + (stop - before);
  if r.applied >= target then begin
    r.status <- Up;
    `Caught_up
  end
  else `Recovering

let cached_response r (c : Cmd.t) = Tbl.find_opt r.dedup (Cmd.key c)
