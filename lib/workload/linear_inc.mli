(** Incremental (windowed) linearizability checking for long histories.

    The full {!Model.Linearize.check} oracle re-searches the entire history;
    at workload scale (millions of events) that is unusable. This monitor
    consumes the history one event at a time and checks it window by window
    through {!Model.Linearize.advance}: the state carried between windows is
    the {e frontier} — every search configuration (pending ops, linearized
    ops awaiting their returns, object value) some linearization of the
    events so far can be in. The window invariant: a history is linearizable
    iff no flush ever empties the frontier, for {e any} partition into
    windows — the boundary is a memo boundary, not an approximation — so the
    incremental verdict is pinned equal to the oracle (modulo an explicit
    node-budget truncation, never a silent pass). The engine flushes at
    near-quiescent ticks, where few ops straddle the boundary and the
    frontier stays small. *)

type verdict =
  | Ok
  | Violation of string  (** Non-linearizable; names the failing window. *)
  | Truncated of string  (** Node budget exhausted; verdict unknown. *)

type t

val create : ?max_nodes:int -> ?soft_outstanding:int -> ?hard_buffer:int -> Spec.Seq_type.t -> t
(** [max_nodes] (default 200k) bounds each window's search; [soft_outstanding]
    (default 4) is the flush policy's near-quiescence threshold — the frontier
    carried across a boundary grows roughly factorially in the calls that
    straddle it, so this must stay small; [hard_buffer] (default 2048) forces
    a flush regardless. *)

val record : t -> Model.Linearize.event -> unit
(** Append one history event (in real-time order). No-op after a verdict. *)

val tick : t -> verdict
(** Flush the buffered window if the policy allows (few outstanding calls, or
    the buffer hit its hard cap); otherwise keep buffering. *)

val flush : t -> verdict
(** Force a flush of whatever is buffered. *)

val finish : t -> verdict
(** Final flush at end of run; the returned verdict is the history's. *)

val verdict : t -> verdict

val windows : t -> int
val events : t -> int
val max_window : t -> int
val max_frontier : t -> int
val outstanding : t -> int
(** Calls without a matching return so far — the concurrency the next flush
    will carry across the boundary. *)
