open Ioa

type t = { client : int; seq : int; op : Value.t }

let key c = c.client, c.seq

let pp ppf c = Format.fprintf ppf "%d.%d:%a" c.client c.seq Value.pp c.op
