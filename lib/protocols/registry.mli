(** The shared protocol table.

    One name → constructor registry serving the CLI ([boost lint], [boost
    chaos], ...), the benchmarks and the test-suites, so they all enumerate
    the same protocols under the same names instead of each re-listing the
    lookup. Construction is parameterized by the common knob set
    ({!params}); protocols ignore the knobs they do not have. *)

type params = {
  n : int;  (** Process count (where configurable). *)
  f : int;  (** Service resilience level (where configurable). *)
  groups : int;  (** k-set: group count (= the k of k-agreement). *)
  group_size : int;  (** k-set: processes per group. *)
}

val default_params : params
(** [n = 2; f = 0; groups = 2; group_size = 2] — the CLI defaults. *)

type entry = {
  name : string;  (** CLI name, e.g. ["register-wait"]. *)
  doc : string;
  build : params -> Model.System.t;
  k_of : params -> int;  (** Agreement width (1 except for k-set). *)
  claims : params -> Analysis.Guarantee.claim;
      (** What the protocol is held to by the chaos battery, for the static
          [guarantee-gap] pass. The boosting entries (tob, kset, fd-boost)
          register their over-claim deliberately; everyone else claims no
          more than the composed service vector supports. *)
}

val all : entry list
(** In CLI listing order. Names are unique. *)

val names : string list

val sorted_names : string list
(** [names] in alphabetical order — for error messages and stable listings. *)

val find : string -> entry option
