(** The shared protocol table.

    One name → constructor registry serving the CLI ([boost lint], [boost
    chaos], ...), the benchmarks and the test-suites, so they all enumerate
    the same protocols under the same names instead of each re-listing the
    lookup. Construction is parameterized by the common knob set
    ({!params}); protocols ignore the knobs they do not have. *)

type params = {
  n : int;  (** Process count (where configurable). *)
  f : int;  (** Service resilience level (where configurable). *)
  groups : int;  (** k-set: group count (= the k of k-agreement). *)
  group_size : int;  (** k-set: processes per group. *)
}

val default_params : params
(** [n = 2; f = 0; groups = 2; group_size = 2] — the CLI defaults. *)

type entry = {
  name : string;  (** CLI name, e.g. ["register-wait"]. *)
  doc : string;
  build : params -> Model.System.t;
  k_of : params -> int;  (** Agreement width (1 except for k-set). *)
  claims : params -> Analysis.Guarantee.claim;
      (** What the protocol is held to by the chaos battery, for the static
          [guarantee-gap] pass. The boosting entries (tob, kset, fd-boost)
          register their over-claim deliberately; everyone else claims no
          more than the composed service vector supports. *)
}

val all : entry list
(** In CLI listing order. Names are unique. *)

val names : string list

val sorted_names : string list
(** [names] in alphabetical order — for error messages and stable listings. *)

val find : string -> entry option

val gaps : entry -> params -> Model.System.t -> Analysis.Guarantee.gap list
(** The guarantee-gap pass behind [boost lint]: the registered claim against
    the composed vector, plus — for claims quantified over all n — the
    Thm 10 connectivity check at a larger probe size. *)

val lint_key : Analysis.Structhash.t -> max_faults:int -> string -> string
(** The presentation cache key for a rendered lint report: full structural
    hash, analysis parameters, and the claim digest. *)

val claim_digest : entry -> params -> string
(** Digest of everything a lint result depends on beyond the system itself:
    the registered claim and, when it scales, the identity of the probe
    system the scaling gaps run against. *)

val inputs_key_default : string
(** The default-inputs marker used in reach cache keys. *)

type lint_result = {
  name : string;
  human : string;  (** The rendered report, margin 78, trailing newline. *)
  findings : Analysis.Lint.finding list;
  code : int;  (** {!Analysis.Lint.exit_code} of the report. *)
  hash : Analysis.Structhash.t option;  (** Computed iff a cache was given. *)
}

val lint : ?cache:Analysis.Cache.t -> ?max_faults:int -> entry -> params -> lint_result
(** The single lint pipeline behind every CLI path (sequential, parallel,
    cached, cold): build, hash (when caching), consult the cache — an exact
    presentation hit replays the rendered report; a semantic hit restores
    the fixpoint solution (mapping service renames/permutations) and only
    re-harvests and re-renders — else analyze cold and store both entries.
    [max_faults] defaults to 1. Thread-safe under a shared [cache]. *)

val manifest : unit -> (string * Analysis.Structhash.t) list
(** Structural hashes of the whole fleet at {!default_params} — the
    recorded side of {!Analysis.Cache.diff}. *)

(** {1 Parameterized certification ([boost lint --param])} *)

val param_window : (int * int) list
(** The default (n, f) window: n ∈ \{2,3,4\} × f ∈ \{0,1,2\} — every
    resilient registry protocol's full f ≤ resilience range plus the
    over-budget points, whose degraded verdicts certificates record rather
    than hide. *)

val family_key : ?window:(int * int) list -> ?max_faults:int -> entry -> string
(** The parameterized cache key ({!Analysis.Structhash.family}): every
    window point's presentation lint key folded into one digest. Any
    behavioral or claim change at any grid point moves it. *)

val certify :
  ?cache:Analysis.Cache.t ->
  ?window:(int * int) list ->
  ?max_faults:int ->
  entry ->
  Analysis.Cert.t
(** Build (or replay — one pcert hit covers the whole window) the
    protocol's resilience certificate. Certification is concrete by
    construction: every point's findings come from the ordinary lint
    pipeline at that instantiation; with a cache, the per-point lint
    entries populate too. [max_faults] defaults to 1. *)

val cert_disagreements :
  ?max_faults:int -> entry -> Analysis.Cert.t -> (int * int) list
(** Validate against fresh cache-less concrete lints at every stored
    point, byte-for-byte ({!Analysis.Cert.disagreements}); empty means
    validated. *)
