type params = { n : int; f : int; groups : int; group_size : int }

let default_params = { n = 2; f = 0; groups = 2; group_size = 2 }

type entry = {
  name : string;
  doc : string;
  build : params -> Model.System.t;
  k_of : params -> int;
  claims : params -> Analysis.Guarantee.claim;
}

let one _ = 1

(* What each protocol is held to by the chaos battery (`Monitor.defaults`
   checks full consensus agreement, validity, termination, linearizability),
   expressed as a guarantee claim for the static gap pass. Honest claims
   (≤ the composed service vector) leave no gap even where the battery
   refutes the protocol one crash beyond its claim; the three boosting
   entries register the over-claim that is their point. *)
let consensus ?(lin = true) ?termination ?(scales = false) () _p =
  {
    Analysis.Guarantee.agreement = Some 1;
    termination;
    linearizable = lin;
    scales;
  }

let all =
  [
    {
      name = "direct";
      doc = "n clients on one f-resilient atomic consensus service";
      build = (fun p -> Direct.system ~n:p.n ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "split";
      doc = "per-process 0-resilient consensus services";
      build = (fun p -> Split.system ~n:p.n);
      k_of = one;
      claims = (fun _ ->
          (* Per-process services claim nothing across processes: no
             agreement claim, so the 2-island scope is not a gap. *)
          { Analysis.Guarantee.no_claim with
            Analysis.Guarantee.termination = Some (Analysis.Guarantee.Crashes 0);
            linearizable = true });
    };
    {
      name = "register-vote";
      doc = "2 processes voting through wait-free registers";
      build = (fun _ -> Register_vote.system ());
      k_of = one;
      claims = consensus ~termination:(Analysis.Guarantee.Crashes 1) ();
    };
    {
      name = "register-wait";
      doc = "2 processes on wait-free registers, flawed resilience claim";
      build = (fun _ -> Register_wait.system ());
      k_of = one;
      claims = (* The flawed resilience claim is a protocol-logic bug, not a typing
         gap: wait-free registers do support termination under one crash. *)
        consensus ~termination:(Analysis.Guarantee.Crashes 1) ();
    };
    {
      name = "tob";
      doc = "n clients on an f-resilient total-order broadcast service";
      build = (fun p -> Tob_direct.system ~n:p.n ~f:p.f);
      k_of = one;
      claims = (fun p ->
          (* The Thm 9 boost: f+1-resilient consensus from an f-resilient
             TO-broadcast service — one more crash than the meet allows. *)
          consensus ~lin:false
            ~termination:(Analysis.Guarantee.Crashes (p.f + 1)) () p);
    };
    {
      name = "fd-all";
      doc = "consensus from an all-connected failure detector";
      build = (fun p -> Fd_allconnected.system ~n:p.n ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "kset";
      doc = "k-set agreement from per-group consensus services";
      build = (fun p -> Kset_boost.system ~groups:p.groups ~group_size:p.group_size);
      k_of = (fun p -> p.groups);
      claims = (fun p ->
          (* The chaos battery holds every registry protocol to full
             consensus (k = 1); §4 warrants only k = groups. The scope gap
             is exactly that distance (Thm 2). *)
          consensus ~termination:Analysis.Guarantee.Wait_free () p);
    };
    {
      name = "fd-boost";
      doc = "boosting attempt through a failure-detector service";
      build = (fun p -> Fd_boost.system ~n:p.n);
      k_of = one;
      claims = (* §6.3's positive result at n = 2, claimed for all n — Thm 10's
         connectivity hypothesis fails at the n = 3 probe. *)
        consensus ~termination:Analysis.Guarantee.Wait_free ~scales:true ();
    };
    {
      name = "tas";
      doc = "consensus from f-resilient test-and-set";
      build = (fun p -> Tas_consensus.system ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "queue";
      doc = "consensus from an f-resilient shared queue";
      build = (fun p -> Queue_consensus.system ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "mp-all";
      doc = "message-passing consensus, all-to-all delivery";
      build = (fun p -> Mp_consensus.all_system ~n:p.n);
      k_of = one;
      claims = consensus ~lin:false ~termination:(Analysis.Guarantee.Crashes 0) ();
    };
    {
      name = "mp-quorum";
      doc = "message-passing consensus, quorum delivery";
      build = (fun p -> Mp_consensus.quorum_system ~n:p.n);
      k_of = one;
      claims = consensus ~lin:false ~termination:(Analysis.Guarantee.Crashes 1) ();
    };
    {
      name = "universal";
      doc = "universal construction over a shared counter";
      build =
        (fun p ->
          Universal.system ~obj:(Spec.Seq_counter.make ())
            ~ops:(List.init p.n (fun _ -> Spec.Seq_counter.increment)));
      k_of = one;
      claims = (fun _ ->
          (* Decides counter responses, not proposed inputs: linearizability
             and wait-freedom are the claims, agreement is not. *)
          { Analysis.Guarantee.no_claim with
            Analysis.Guarantee.termination = Some Analysis.Guarantee.Wait_free;
            linearizable = true });
    };
  ]

let names = List.map (fun e -> e.name) all
let sorted_names = List.sort String.compare names

let find name = List.find_opt (fun e -> String.equal e.name name) all

(* --- the guarantee-gap pass ---

   The registered claim against the composed vector, plus — for claims
   quantified over all n — the Thm 10 connectivity check at a larger probe
   size. Shared by the CLI and the cached lint pipeline so both key and
   compute the same analysis. *)

let scaling_probe (e : entry) (p : params) = e.build { p with n = max 3 (p.n + 1) }

let gaps (e : entry) (p : params) sys =
  let claim = e.claims p in
  let base = Analysis.Guarantee.gaps ~claim sys in
  if claim.Analysis.Guarantee.scales then
    base @ Analysis.Guarantee.scaling_gaps ~claim (scaling_probe e p)
  else base

(* --- the cached lint pipeline --- *)

(* Everything a lint result can depend on beyond the system itself: the
   registered claim, and — when the claim scales — the identity of the
   probe system the scaling gaps are computed against. *)
let claim_digest (e : entry) (p : params) =
  let claim = e.claims p in
  let tokens =
    [
      (match claim.Analysis.Guarantee.agreement with
      | None -> "a-"
      | Some k -> "a" ^ string_of_int k);
      (match claim.Analysis.Guarantee.termination with
      | None -> "t-"
      | Some (Analysis.Guarantee.Crashes k) -> "tc" ^ string_of_int k
      | Some Analysis.Guarantee.Wait_free -> "twf");
      (if claim.Analysis.Guarantee.linearizable then "lin" else "nolin");
      (if claim.Analysis.Guarantee.scales then
         "s" ^ Analysis.Structhash.key (Analysis.Structhash.system (scaling_probe e p))
       else "s-");
    ]
  in
  Analysis.Structhash.hex (Analysis.Structhash.mix_tokens tokens)

let lint_key (h : Analysis.Structhash.t) ~max_faults digest =
  Printf.sprintf "%s-mf%d-c%s" (Analysis.Structhash.key h) max_faults digest

(* The default-inputs marker in reach keys; lint always analyzes with the
   binary-staircase defaults. *)
let inputs_key_default = "idef"

type lint_result = {
  name : string;
  human : string;
  findings : Analysis.Lint.finding list;
  code : int;
  hash : Analysis.Structhash.t option;
}

(* Margin-78 buffer rendering — byte-identical to what [Format.printf]
   would produce on an unresized std_formatter (whose default margin is
   78), and stable across cache replays and parallel lint domains. *)
let render_lint name r =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  Format.pp_set_margin ppf 78;
  Format.fprintf ppf "@[<v 2>%s:@,%a@]@." name Analysis.Lint.pp r;
  Buffer.contents b

let lint ?cache ?(max_faults = 1) (e : entry) (p : params) =
  let sys = e.build p in
  let fresh ?reach ?interference ?hash ~store () =
    let r =
      Analysis.Lint.analyze ~max_faults ~gaps:(gaps e p sys) ?reach ?interference sys
    in
    let res =
      {
        name = e.name;
        human = render_lint e.name r;
        findings = r.Analysis.Lint.findings;
        code = Analysis.Lint.exit_code r;
        hash;
      }
    in
    store r res;
    res
  in
  match cache with
  | None -> fresh ~store:(fun _ _ -> ()) ()
  | Some c -> (
    let h = Analysis.Structhash.system sys in
    let key = lint_key h ~max_faults (claim_digest e p) in
    match Analysis.Cache.lint_find c ~key with
    | Some entry ->
      (* Exact presentation hit: replay the rendered report verbatim. The
         reach entry is deliberately not consulted, so a fully warm run
         shows one hit per protocol and zero misses. *)
      {
        name = e.name;
        human = entry.Analysis.Cache.human;
        findings = entry.Analysis.Cache.findings;
        code = entry.Analysis.Cache.code;
        hash = Some h;
      }
    | None ->
      (* Semantic fallback: a fixpoint solution stored under the semantic
         key — possibly by a renamed or service-permuted twin — skips the
         solve; only the cheap harvest and rendering re-run. Footprint
         summaries are their own first-class entry (full-hash keyed, reach-
         refined), so a presentation miss that still has them skips the
         whole refinement pass. *)
      let reach =
        Analysis.Cache.reach_find c h ~max_faults ~inputs_key:inputs_key_default sys
      in
      let fkey =
        Analysis.Cache.fp_key ~full_key:(Analysis.Structhash.key h)
          ~max_crashes:max_faults ~refined:true
      in
      let fps =
        Analysis.Cache.fp_find c ~key:fkey
          ~n_tasks:(Array.length sys.Model.System.tasks)
      in
      let interference =
        Option.map (Analysis.Interfere.of_footprints sys ~max_crashes:max_faults) fps
      in
      fresh ?reach ?interference ~hash:h
        ~store:(fun r res ->
          if Option.is_none reach then
            Analysis.Cache.reach_store c h ~max_faults ~inputs_key:inputs_key_default
              r.Analysis.Lint.reach;
          if Option.is_none fps then
            Analysis.Cache.fp_store c ~key:fkey
              (Array.map snd (Analysis.Interfere.footprints r.Analysis.Lint.interference));
          Analysis.Cache.lint_store c ~key
            {
              Analysis.Cache.human = res.human;
              findings = res.findings;
              code = res.code;
            })
        ())

let manifest () =
  List.map
    (fun (e : entry) -> e.name, Analysis.Structhash.system (e.build default_params))
    all

(* --- parameterized certification (`boost lint --param`) --- *)

(* The default window: n ∈ {2,3,4} × f ∈ {0,1,2} — every resilient registry
   protocol's full (n, f ≤ resilience) range, plus the over-budget points
   whose degraded verdicts the certificate records rather than hides. *)
let param_window = [ 2, 0; 2, 1; 2, 2; 3, 0; 3, 1; 3, 2; 4, 0; 4, 1; 4, 2 ]

let param_of (n, f) = { default_params with n; f }

(* Parameterized hashing: the family key folds every window point's
   presentation lint key (full structural hash × analysis parameters ×
   claim digest) into one digest. A behavioral or claim change at any grid
   point moves it, so a pcert entry can never replay across an edit. *)
let family_key ?(window = param_window) ?(max_faults = 1) (e : entry) =
  let tokens =
    List.map
      (fun (n, f) ->
        let p = param_of (n, f) in
        let h = Analysis.Structhash.system (e.build p) in
        Printf.sprintf "(%d,%d)%s" n f (lint_key h ~max_faults (claim_digest e p)))
      window
  in
  Analysis.Structhash.family (("pcert-mf" ^ string_of_int max_faults) :: tokens)

(* Certification is concrete by construction: every point's findings come
   from the ordinary lint pipeline at that instantiation, so the stored
   certificate is byte-for-byte what per-point runs produce — the symbolic
   layer ({!Analysis.Param}, {!Analysis.Reach.analyze_sym}) accelerates
   exploration and the cache, never the authority. A warm sweep is one
   pcert hit replaying all |window| verdicts. *)
let certify ?cache ?(window = param_window) ?(max_faults = 1) (e : entry) =
  let fam = family_key ~window ~max_faults e in
  let fresh () =
    let points =
      List.map
        (fun (n, f) ->
          let r = lint ?cache ~max_faults e (param_of (n, f)) in
          { Analysis.Cert.pn = n; pf = f; findings = r.findings; code = r.code })
        window
    in
    Analysis.Cert.make ~protocol:e.name ~family:fam ~max_faults points
  in
  match cache with
  | None -> fresh ()
  | Some c -> (
    match Analysis.Cache.pcert_find c ~key:fam with
    | Some cert -> cert
    | None ->
      let cert = fresh () in
      Analysis.Cache.pcert_store c ~key:fam cert;
      cert)

let cert_disagreements ?(max_faults = 1) (e : entry) cert =
  (* Validation is always cache-less: fresh concrete lints at every stored
     point, compared byte-for-byte. *)
  Analysis.Cert.disagreements cert ~fresh:(fun ~n ~f ->
      let r = lint ~max_faults e (param_of (n, f)) in
      r.findings, r.code)
