type params = { n : int; f : int; groups : int; group_size : int }

let default_params = { n = 2; f = 0; groups = 2; group_size = 2 }

type entry = {
  name : string;
  doc : string;
  build : params -> Model.System.t;
  k_of : params -> int;
}

let one _ = 1

let all =
  [
    {
      name = "direct";
      doc = "n clients on one f-resilient atomic consensus service";
      build = (fun p -> Direct.system ~n:p.n ~f:p.f);
      k_of = one;
    };
    {
      name = "split";
      doc = "per-process 0-resilient consensus services";
      build = (fun p -> Split.system ~n:p.n);
      k_of = one;
    };
    {
      name = "register-vote";
      doc = "2 processes voting through wait-free registers";
      build = (fun _ -> Register_vote.system ());
      k_of = one;
    };
    {
      name = "register-wait";
      doc = "2 processes on wait-free registers, flawed resilience claim";
      build = (fun _ -> Register_wait.system ());
      k_of = one;
    };
    {
      name = "tob";
      doc = "n clients on an f-resilient total-order broadcast service";
      build = (fun p -> Tob_direct.system ~n:p.n ~f:p.f);
      k_of = one;
    };
    {
      name = "fd-all";
      doc = "consensus from an all-connected failure detector";
      build = (fun p -> Fd_allconnected.system ~n:p.n ~f:p.f);
      k_of = one;
    };
    {
      name = "kset";
      doc = "k-set agreement from per-group consensus services";
      build = (fun p -> Kset_boost.system ~groups:p.groups ~group_size:p.group_size);
      k_of = (fun p -> p.groups);
    };
    {
      name = "fd-boost";
      doc = "boosting attempt through a failure-detector service";
      build = (fun p -> Fd_boost.system ~n:p.n);
      k_of = one;
    };
    {
      name = "tas";
      doc = "consensus from f-resilient test-and-set";
      build = (fun p -> Tas_consensus.system ~f:p.f);
      k_of = one;
    };
    {
      name = "queue";
      doc = "consensus from an f-resilient shared queue";
      build = (fun p -> Queue_consensus.system ~f:p.f);
      k_of = one;
    };
    {
      name = "mp-all";
      doc = "message-passing consensus, all-to-all delivery";
      build = (fun p -> Mp_consensus.all_system ~n:p.n);
      k_of = one;
    };
    {
      name = "mp-quorum";
      doc = "message-passing consensus, quorum delivery";
      build = (fun p -> Mp_consensus.quorum_system ~n:p.n);
      k_of = one;
    };
    {
      name = "universal";
      doc = "universal construction over a shared counter";
      build =
        (fun p ->
          Universal.system ~obj:(Spec.Seq_counter.make ())
            ~ops:(List.init p.n (fun _ -> Spec.Seq_counter.increment)));
      k_of = one;
    };
  ]

let names = List.map (fun e -> e.name) all
let sorted_names = List.sort String.compare names

let find name = List.find_opt (fun e -> String.equal e.name name) all
