type params = { n : int; f : int; groups : int; group_size : int }

let default_params = { n = 2; f = 0; groups = 2; group_size = 2 }

type entry = {
  name : string;
  doc : string;
  build : params -> Model.System.t;
  k_of : params -> int;
  claims : params -> Analysis.Guarantee.claim;
}

let one _ = 1

(* What each protocol is held to by the chaos battery (`Monitor.defaults`
   checks full consensus agreement, validity, termination, linearizability),
   expressed as a guarantee claim for the static gap pass. Honest claims
   (≤ the composed service vector) leave no gap even where the battery
   refutes the protocol one crash beyond its claim; the three boosting
   entries register the over-claim that is their point. *)
let consensus ?(lin = true) ?termination ?(scales = false) () _p =
  {
    Analysis.Guarantee.agreement = Some 1;
    termination;
    linearizable = lin;
    scales;
  }

let all =
  [
    {
      name = "direct";
      doc = "n clients on one f-resilient atomic consensus service";
      build = (fun p -> Direct.system ~n:p.n ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "split";
      doc = "per-process 0-resilient consensus services";
      build = (fun p -> Split.system ~n:p.n);
      k_of = one;
      claims = (fun _ ->
          (* Per-process services claim nothing across processes: no
             agreement claim, so the 2-island scope is not a gap. *)
          { Analysis.Guarantee.no_claim with
            Analysis.Guarantee.termination = Some (Analysis.Guarantee.Crashes 0);
            linearizable = true });
    };
    {
      name = "register-vote";
      doc = "2 processes voting through wait-free registers";
      build = (fun _ -> Register_vote.system ());
      k_of = one;
      claims = consensus ~termination:(Analysis.Guarantee.Crashes 1) ();
    };
    {
      name = "register-wait";
      doc = "2 processes on wait-free registers, flawed resilience claim";
      build = (fun _ -> Register_wait.system ());
      k_of = one;
      claims = (* The flawed resilience claim is a protocol-logic bug, not a typing
         gap: wait-free registers do support termination under one crash. *)
        consensus ~termination:(Analysis.Guarantee.Crashes 1) ();
    };
    {
      name = "tob";
      doc = "n clients on an f-resilient total-order broadcast service";
      build = (fun p -> Tob_direct.system ~n:p.n ~f:p.f);
      k_of = one;
      claims = (fun p ->
          (* The Thm 9 boost: f+1-resilient consensus from an f-resilient
             TO-broadcast service — one more crash than the meet allows. *)
          consensus ~lin:false
            ~termination:(Analysis.Guarantee.Crashes (p.f + 1)) () p);
    };
    {
      name = "fd-all";
      doc = "consensus from an all-connected failure detector";
      build = (fun p -> Fd_allconnected.system ~n:p.n ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "kset";
      doc = "k-set agreement from per-group consensus services";
      build = (fun p -> Kset_boost.system ~groups:p.groups ~group_size:p.group_size);
      k_of = (fun p -> p.groups);
      claims = (fun p ->
          (* The chaos battery holds every registry protocol to full
             consensus (k = 1); §4 warrants only k = groups. The scope gap
             is exactly that distance (Thm 2). *)
          consensus ~termination:Analysis.Guarantee.Wait_free () p);
    };
    {
      name = "fd-boost";
      doc = "boosting attempt through a failure-detector service";
      build = (fun p -> Fd_boost.system ~n:p.n);
      k_of = one;
      claims = (* §6.3's positive result at n = 2, claimed for all n — Thm 10's
         connectivity hypothesis fails at the n = 3 probe. *)
        consensus ~termination:Analysis.Guarantee.Wait_free ~scales:true ();
    };
    {
      name = "tas";
      doc = "consensus from f-resilient test-and-set";
      build = (fun p -> Tas_consensus.system ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "queue";
      doc = "consensus from an f-resilient shared queue";
      build = (fun p -> Queue_consensus.system ~f:p.f);
      k_of = one;
      claims = (fun p -> consensus ~termination:(Analysis.Guarantee.Crashes p.f) () p);
    };
    {
      name = "mp-all";
      doc = "message-passing consensus, all-to-all delivery";
      build = (fun p -> Mp_consensus.all_system ~n:p.n);
      k_of = one;
      claims = consensus ~lin:false ~termination:(Analysis.Guarantee.Crashes 0) ();
    };
    {
      name = "mp-quorum";
      doc = "message-passing consensus, quorum delivery";
      build = (fun p -> Mp_consensus.quorum_system ~n:p.n);
      k_of = one;
      claims = consensus ~lin:false ~termination:(Analysis.Guarantee.Crashes 1) ();
    };
    {
      name = "universal";
      doc = "universal construction over a shared counter";
      build =
        (fun p ->
          Universal.system ~obj:(Spec.Seq_counter.make ())
            ~ops:(List.init p.n (fun _ -> Spec.Seq_counter.increment)));
      k_of = one;
      claims = (fun _ ->
          (* Decides counter responses, not proposed inputs: linearizability
             and wait-freedom are the claims, agreement is not. *)
          { Analysis.Guarantee.no_claim with
            Analysis.Guarantee.termination = Some Analysis.Guarantee.Wait_free;
            linearizable = true });
    };
  ]

let names = List.map (fun e -> e.name) all
let sorted_names = List.sort String.compare names

let find name = List.find_opt (fun e -> String.equal e.name name) all
