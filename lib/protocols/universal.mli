(** Herlihy's universal construction, one-shot form — the §1 motivation for
    studying consensus ("an atomic object of any sequential type can be
    implemented in a wait-free manner using consensus objects").

    Each process publishes one operation of an arbitrary deterministic
    sequential type in its own register, then drives a sequence of
    multi-valued consensus objects, one per slot: slot t's consensus decides
    {e whose} operation commits at position t; every process reads the
    winner's register, applies the operation to its local replica, and — when
    its own operation commits — outputs the operation's response via
    [decide]. Because every replica applies the same operations in the same
    slot order, the implemented object is linearizable; because slot winners
    are always still-proposing processes, each process commits within n
    slots, so with wait-free slot consensus the construction is wait-free. *)

open Ioa

val register_id : int -> string
val slot_id : int -> string

val system : obj:Spec.Seq_type.t -> ops:Value.t list -> Model.System.t
(** [system ~obj ~ops] builds the n-process system ([n = length ops])
    implementing [obj]; process i's published operation is [List.nth ops i],
    delivered to it via [init] (any [init] input just triggers the published
    op, keeping the harness uniform). The response each process records via
    [decide] is [obj]'s response to its own operation at its commit point. *)

val apply_log : Spec.Seq_type.t -> init:Value.t -> Value.t list -> Value.t * Value.t list
(** Fold a commit log (operations in commit order) over a replica value:
    the final value and the per-operation responses in order. The multi-shot
    workload engine's replicas advance by [apply_log] of each decided batch. *)

val replay : Spec.Seq_type.t -> Value.t list -> Value.t * Value.t list
(** [apply_log] from the type's first initial value — the crash-recovery
    catch-up path: a rejoining replica replays the full commit log and lands
    byte-equal to a replica that never crashed. *)

val replica_of : Model.State.t -> pid:int -> Value.t option
(** The local replica value of a running or finished process. *)

val log_of : Model.State.t -> pid:int -> int list
(** The commit log (winning pids in slot order) as known to [pid]. *)
