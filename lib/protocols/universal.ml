open Ioa
open Proto_util

let register_id pid = Printf.sprintf "op%d" pid
let slot_id t = Printf.sprintf "slot%d" t

(* States:
   - idle [op]                         -- published op fixed at construction
   - publish [op]                      -- write own register
   - wrote [op]                        -- waiting for the ack
   - propose [t; replica; log]         -- about to propose for slot t
   - deciding [t; replica; log]        -- slot consensus outstanding
   - fetch [t; w; replica; log]        -- reading the winner's register
   - fetching [t; w; replica; log]
   - finish [resp]                     -- own op committed, output response
   - done [resp]
   [log] is the queue of winners so far. *)

let client ~obj ~n ~op pid =
  let step s =
    if is "publish" s then
      Model.Process.Invoke
        {
          service = register_id pid;
          op = Spec.Seq_register.write op;
          next = st "wrote" [];
        }
    else if is "propose" s then begin
      let t = Value.to_int (field s 0) in
      Model.Process.Invoke
        {
          service = slot_id t;
          op = Spec.Seq_consensus.init pid;
          next = st "deciding" [ field s 0; field s 1; field s 2 ];
        }
    end
    else if is "fetch" s then begin
      let w = Value.to_int (field s 1) in
      Model.Process.Invoke
        {
          service = register_id w;
          op = Spec.Seq_register.read;
          next = st "fetching" (fields s);
        }
    end
    else if is "finish" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s _v = if is "idle" s then st "publish" [] else s in
  let on_response s ~service b =
    if is "wrote" s && String.equal service (register_id pid) && Spec.Op.is "ack" b then
      st "propose"
        [ Value.int 0; List.hd obj.Spec.Seq_type.initials; Value.queue_empty ]
    else if is "deciding" s && Spec.Op.is "decide" b then begin
      let t = Value.to_int (field s 0) in
      if String.equal service (slot_id t) then
        st "fetch" [ field s 0; Value.int (Spec.Seq_consensus.decided_value b); field s 1; field s 2 ]
      else s
    end
    else if is "fetching" s && Spec.Op.is "val" b then begin
      let t = Value.to_int (field s 0) and w = Value.to_int (field s 1) in
      if String.equal service (register_id w) then begin
        let winner_op = Spec.Seq_register.read_value b in
        if is_none winner_op then st "fetch" [ field s 0; field s 1; field s 2; field s 3 ]
        else begin
          let resp, replica' = Spec.Seq_type.apply obj winner_op (field s 2) in
          let log' = Value.queue_push (Value.int w) (field s 3) in
          if w = pid then st "finish" [ resp ]
          else if t + 1 >= n then
            (* All slots exhausted without committing: impossible while we
               keep proposing, but keep the state machine total. *)
            st "stuck" [ replica'; log' ]
          else st "propose" [ Value.int (t + 1); replica'; log' ]
        end
      end
      else s
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" [ op ]) ~step ~on_init ~on_response ()

let system ~obj ~ops =
  let n = List.length ops in
  let endpoints = List.init n Fun.id in
  let values = Proto_util.none :: obj.Spec.Seq_type.invocations in
  let registers =
    List.init n (fun pid ->
      Model.Service.register ~id:(register_id pid) ~endpoints
        (Spec.Seq_register.make ~values ~initial:Proto_util.none))
  in
  let slots =
    List.init n (fun t ->
      Model.Service.atomic ~id:(slot_id t) ~endpoints ~f:(n - 1)
        (Spec.Seq_consensus.make ~values:endpoints ()))
  in
  let processes = List.mapi (fun pid op -> client ~obj ~n ~op pid) ops in
  Model.System.make ~processes ~services:(registers @ slots)

(* --- multi-shot helpers ---------------------------------------------------

   The workload engine's long-lived replicated object is this construction
   iterated: each consensus shot commits a batch of operations, and every
   replica advances its copy of the object by applying the batch in commit
   order. Catch-up after a crash is [replay] of the full commit log — the
   same fold a live replica performed incrementally, so a caught-up replica
   is byte-equal to one that never crashed. *)

let apply_log obj ~init cmds =
  let value, rev_resps =
    List.fold_left
      (fun (v, acc) op ->
        let resp, v' = Spec.Seq_type.apply obj op v in
        v', resp :: acc)
      (init, []) cmds
  in
  value, List.rev rev_resps

let replay obj cmds = apply_log obj ~init:(List.hd obj.Spec.Seq_type.initials) cmds

let state_fields_with_replica ps =
  if is "propose" ps || is "deciding" ps then Some (field ps 1, field ps 2)
  else if is "fetch" ps || is "fetching" ps then Some (field ps 2, field ps 3)
  else if is "stuck" ps then Some (field ps 0, field ps 1)
  else None

let replica_of (s : Model.State.t) ~pid =
  Option.map fst (state_fields_with_replica s.Model.State.procs.(pid))

let log_of (s : Model.State.t) ~pid =
  match state_fields_with_replica s.Model.State.procs.(pid) with
  | Some (_, log) -> List.map Value.to_int (Value.to_list log)
  | None -> []
