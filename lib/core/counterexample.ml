open Ioa

type witness =
  | Agreement_violation of Model.Exec.t
  | Validity_violation of Model.Exec.t
  | Non_termination of { exec : Model.Exec.t; failed : int list; proven : bool }
  | Valence_contradiction of {
      replay : Model.Exec.t;
      decided : int;
      expected : Valence.verdict;
    }
  | Divergence of Model.Task.t list

let pp_witness ppf = function
  | Agreement_violation exec ->
    Format.fprintf ppf "agreement violation after %d steps" (Model.Exec.length exec)
  | Validity_violation exec ->
    Format.fprintf ppf "validity violation after %d steps" (Model.Exec.length exec)
  | Non_termination { exec; failed; proven } ->
    Format.fprintf ppf
      "termination violation%s: fair run of %d steps with failures {%a}, survivors never decide"
      (if proven then " (lasso: provably infinite)" else " (budget-bounded evidence)")
      (Model.Exec.length exec)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
      failed
  | Valence_contradiction { decided; expected; _ } ->
    Format.fprintf ppf "valence contradiction: decided %d after a %a execution" decided
      Valence.pp_verdict expected
  | Divergence path ->
    Format.fprintf ppf "bivalence-preserving schedule of %d steps (divergence)"
      (List.length path)

let witness_exec = function
  | Agreement_violation exec | Validity_violation exec -> Some exec
  | Non_termination { exec; _ } -> Some exec
  | Valence_contradiction { replay; _ } -> Some replay
  | Divergence _ -> None

type pivot = Pivot_process of int | Pivot_service of int

let pp_pivot ppf = function
  | Pivot_process i -> Format.fprintf ppf "process %d (Lemma 6)" i
  | Pivot_service k -> Format.fprintf ppf "service #%d (Lemma 7)" k

type outcome = Refuted of witness | Not_refuted of string | Out_of_budget of string

let pp_outcome ppf = function
  | Refuted w -> Format.fprintf ppf "REFUTED: %a" pp_witness w
  | Not_refuted why -> Format.fprintf ppf "not refuted: %s" why
  | Out_of_budget why -> Format.fprintf ppf "out of budget: %s" why

type report = {
  staircase : (Value.t list * Valence.verdict) list;
  bivalent_inputs : Value.t list option;
  graph_states : int;
  hook : Hook.t option;
  pivot : pivot option;
  failed_set : int list;
  outcome : outcome;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v 2>boosting analysis:";
  List.iter
    (fun (inputs, verdict) ->
      Format.fprintf ppf "@,init [%a] -> %a"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Value.pp)
        inputs Valence.pp_verdict verdict)
    r.staircase;
  (match r.hook with
  | Some h -> Format.fprintf ppf "@,%a" Hook.pp h
  | None -> ());
  (match r.pivot with
  | Some p -> Format.fprintf ppf "@,pivot: %a" pp_pivot p
  | None -> ());
  if r.failed_set <> [] then
    Format.fprintf ppf "@,failed set J = {%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
      r.failed_set;
  Format.fprintf ppf "@,%a@]" pp_outcome r.outcome

(* Build the execution consisting of the initialization with the given
   inputs. *)
let initialization_exec sys inputs =
  let exec = Model.Exec.init (Model.System.initial_state sys) in
  List.fold_left
    (fun (exec, i) v -> Model.Exec.append_init sys exec i v, i + 1)
    (exec, 0) inputs
  |> fst

(* Execution reaching a graph vertex: initialization followed by a BFS task
   path. *)
let exec_to_vertex sys inputs analysis vertex =
  let g = Valence.graph analysis in
  match Graph.path_between g ~src:(Graph.root g) ~dst:vertex with
  | None -> None
  | Some tasks -> Model.Exec.replay_tasks sys (initialization_exec sys inputs) tasks

(* The survivors' decision predicate used as the fair run's goal. *)
let survivor_decided in_j (s : Model.State.t) =
  Array.to_list s.Model.State.decisions
  |> List.mapi (fun i d -> i, d)
  |> List.exists (fun (i, d) -> (not (in_j i)) && Option.is_some d)

(* γ′ of Lemmas 6–7: drop environment inputs, dummy steps, and all steps of
   failed processes. Service perform/output steps for failed endpoints only
   happen as dummies under the silencing policy, so dropping dummies covers
   them. *)
let gamma_prime exec ~from_length ~in_j =
  let steps = Model.Exec.steps exec in
  let suffix = List.filteri (fun idx _ -> idx >= from_length) steps in
  List.filter_map
    (fun (st : Model.Exec.step) ->
      match st.Model.Exec.label with
      | Model.Exec.L_task e ->
        if Model.Event.is_dummy st.Model.Exec.event then None
        else (
          match e with
          | Model.Task.Proc i when in_j i -> None
          | _ -> Some e)
      | Model.Exec.L_init _ | Model.Exec.L_fail _ -> None
      (* The impossibility engine only builds crash executions; network
         adversary labels exist solely in chaos runs and carry no task. *)
      | Model.Exec.L_net _ | Model.Exec.L_partition _ | Model.Exec.L_heal _ -> None)
    suffix

(* Pick J: [failures] processes including [must_include], drawn from
   [prefer] first. *)
let choose_j ~n ~failures ~must_include ~prefer =
  let set = List.sort_uniq Int.compare must_include in
  let add pool set =
    List.fold_left
      (fun set i -> if List.length set < failures && not (List.mem i set) then set @ [ i ] else set)
      set pool
  in
  let set = add prefer set in
  let set = add (List.init n Fun.id) set in
  List.sort Int.compare set

(* Can [failures] failures silence service [c]? Either all its endpoints can
   be failed, or its resilience budget is smaller than the failure budget. *)
let silenceable (c : Model.Service.t) ~failures =
  Array.length c.Model.Service.endpoints <= failures
  || c.Model.Service.resilience < failures

let run_fair_with_failures sys exec ~j_set ~run_bound =
  let exec = List.fold_left (fun exec i -> Model.Exec.append_fail sys exec i) exec j_set in
  let in_j i = List.mem i j_set in
  Fair_run.run ~policy:Model.System.dummy_policy ~max_steps:run_bound
    ~goal:(survivor_decided in_j) sys exec

(* The Lemma 6/7 construction at a located flip: [exec0] ends in the
   (v0-valent) state s0 and [exec1] in the opposite-valent s1. Returns the
   witness the construction produces. *)
let lemma67_construction sys ~exec0 ~exec1 ~j_set ~run_bound ~v0 =
  let len0 = Model.Exec.length exec0 in
  let exec, outcome = run_fair_with_failures sys exec0 ~j_set ~run_bound in
  match outcome with
  | Fair_run.Decided -> (
    (* Survivors decided; strip γ and replay after the opposite execution. *)
    let in_j i = List.mem i j_set in
    let gamma = gamma_prime exec ~from_length:len0 ~in_j in
    match Model.Exec.replay_tasks sys exec1 gamma with
    | Some replay -> (
      let decided =
        Model.State.decided_pairs (Model.Exec.last_state replay)
        |> List.filter (fun (i, _) -> not (in_j i))
      in
      match decided with
      | (_, v) :: _ ->
        Refuted
          (Valence_contradiction
             {
               replay;
               decided = Value.to_int v;
               expected =
                 (match v0 with
                 | Valence.Zero_valent -> Valence.One_valent
                 | _ -> Valence.Zero_valent);
             })
      | [] -> Not_refuted "replayed fragment produced no survivor decision")
    | None -> Not_refuted "γ′ was not replayable after the opposite-valent execution")
  | Fair_run.Lasso _ -> Refuted (Non_termination { exec; failed = j_set; proven = true })
  | Fair_run.Budget -> Refuted (Non_termination { exec; failed = j_set; proven = false })

let refute ?(max_states = 200_000) ?(run_bound = 50_000) ~failures (sys : Model.System.t) =
  let n = Model.System.n_processes sys in
  if not (0 < failures && failures < n) then
    invalid_arg "Counterexample.refute: need 0 < failures < n";
  let entries = Initialization.staircase ~max_states sys in
  let staircase =
    List.map (fun (e : Initialization.entry) -> e.Initialization.inputs, e.Initialization.verdict) entries
  in
  let base_report =
    {
      staircase;
      bivalent_inputs = None;
      graph_states = 0;
      hook = None;
      pivot = None;
      failed_set = [];
      outcome = Not_refuted "analysis incomplete";
    }
  in
  (* Any graph incomplete → report budget, results would not be exact. *)
  if
    List.exists
      (fun (e : Initialization.entry) -> not (Valence.is_exact e.Initialization.analysis))
      entries
  then
    { base_report with outcome = Out_of_budget "state-space bound hit during valence analysis" }
  else
    (* 1. Direct safety violations reachable failure-free. *)
    let direct_violation =
      List.find_map
        (fun (e : Initialization.entry) ->
          let a = e.Initialization.analysis in
          match Valence.first_disagreement a with
          | Some v ->
            Option.map
              (fun exec -> Agreement_violation exec)
              (exec_to_vertex sys e.Initialization.inputs a v)
          | None -> (
            match Valence.first_invalid_decision a with
            | Some v ->
              Option.map
                (fun exec -> Validity_violation exec)
                (exec_to_vertex sys e.Initialization.inputs a v)
            | None -> None))
        entries
    in
    match direct_violation with
    | Some w -> { base_report with outcome = Refuted w }
    | None -> (
      (* 2. Blank initialization: fair failure-free run that never decides. *)
      let blank =
        List.find_opt
          (fun (e : Initialization.entry) ->
            Valence.equal_verdict e.Initialization.verdict Valence.Blank)
          entries
      in
      match blank with
      | Some e ->
        let exec0 = initialization_exec sys e.Initialization.inputs in
        let exec, fo =
          Fair_run.run ~max_steps:run_bound ~goal:(survivor_decided (fun _ -> false)) sys
            exec0
        in
        let proven = match fo with Fair_run.Lasso _ -> true | _ -> false in
        {
          base_report with
          outcome = Refuted (Non_termination { exec; failed = []; proven });
        }
      | None -> (
        match
          List.find_opt
            (fun (e : Initialization.entry) ->
              Valence.equal_verdict e.Initialization.verdict Valence.Bivalent)
            entries
        with
        | Some entry -> (
          (* 3. Hook phase. *)
          let analysis = entry.Initialization.analysis in
          let g = Valence.graph analysis in
          let report =
            {
              base_report with
              bivalent_inputs = Some entry.Initialization.inputs;
              graph_states = Graph.size g;
            }
          in
          match Hook.find analysis with
          | Hook.Unbounded path -> { report with outcome = Refuted (Divergence path) }
          | Hook.Not_bivalent | Hook.Inexact ->
            { report with outcome = Out_of_budget "hook search preconditions lost" }
          | Hook.Hook h -> (
            let report = { report with hook = Some h } in
            (* Build the two hook-endpoint executions. *)
            let base_exec =
              Model.Exec.replay_tasks sys
                (initialization_exec sys entry.Initialization.inputs)
                h.Hook.base_path
            in
            match base_exec with
            | None -> { report with outcome = Out_of_budget "hook path not replayable" }
            | Some base_exec -> (
              let exec0 = Model.Exec.replay_tasks sys base_exec [ h.Hook.e ] in
              let exec1 = Model.Exec.replay_tasks sys base_exec [ h.Hook.e'; h.Hook.e ] in
              match exec0, exec1 with
              | Some exec0, Some exec1 -> (
                let s0 = Model.Exec.last_state exec0 in
                let s1 = Model.Exec.last_state exec1 in
                (* Claims 3-5 of Lemma 8 guarantee that the hook's endpoint
                   states are j-similar (process pivot, or register cases
                   possibly after one extra e' step) or k-similar (service
                   pivot); pick the applicable lemma accordingly. *)
                let plan =
                  match Similarity.j_witnesses sys s0 s1 with
                  | j :: _ ->
                    Some
                      ( Pivot_process j,
                        choose_j ~n ~failures ~must_include:[ j ] ~prefer:[],
                        exec0 )
                  | [] -> (
                    let silenceable_k =
                      List.find_opt
                        (fun k ->
                          silenceable sys.Model.System.services.(k) ~failures)
                        (Similarity.k_witnesses sys s0 s1)
                    in
                    match silenceable_k with
                    | Some k ->
                      let c = sys.Model.System.services.(k) in
                      let eps = Array.to_list c.Model.Service.endpoints in
                      let must = if List.length eps <= failures then eps else [] in
                      Some
                        ( Pivot_service k,
                          choose_j ~n ~failures ~must_include:must ~prefer:eps,
                          exec0 )
                    | None -> (
                      (* Claim 5 read-vs-write case: e'(s0) and s1 are
                         j-similar; e'(α0) is still v0-valent. *)
                      match Model.Exec.replay_tasks sys exec0 [ h.Hook.e' ] with
                      | None -> None
                      | Some exec0' -> (
                        match
                          Similarity.j_witnesses sys (Model.Exec.last_state exec0') s1
                        with
                        | j :: _ ->
                          Some
                            ( Pivot_process j,
                              choose_j ~n ~failures ~must_include:[ j ] ~prefer:[],
                              exec0' )
                        | [] -> None)))
                in
                match plan with
                | None ->
                  {
                    report with
                    outcome =
                      Not_refuted
                        (Printf.sprintf
                           "hook endpoints are not j-/k-similar for any silenceable pivot: \
                            the system may genuinely be %d-resilient"
                           failures);
                  }
                | Some (pivot, j_set, exec0) ->
                  {
                    report with
                    pivot = Some pivot;
                    failed_set = j_set;
                    outcome =
                      lemma67_construction sys ~exec0 ~exec1 ~j_set ~run_bound
                        ~v0:h.Hook.v0;
                  })
              | _ -> { report with outcome = Out_of_budget "hook edges not replayable" })))
        | None -> (
          (* 4. No bivalent initialization: Lemma 4 flip argument. *)
          match Initialization.staircase_flip ~max_states sys with
          | None ->
            {
              base_report with
              outcome =
                Not_refuted
                  "no bivalent initialization and no 0/1 staircase flip (validity would be \
                   violated — check inputs)";
            }
          | Some (a, b) ->
            (* The two initializations differ in exactly one process's input. *)
            let flip_index =
              let rec diff i xs ys =
                match xs, ys with
                | x :: xs', y :: ys' -> if Value.equal x y then diff (i + 1) xs' ys' else i
                | _ -> invalid_arg "staircase flip: same inputs"
              in
              diff 0 a.Initialization.inputs b.Initialization.inputs
            in
            let j_set = choose_j ~n ~failures ~must_include:[ flip_index ] ~prefer:[] in
            let exec0 = initialization_exec sys a.Initialization.inputs in
            let exec1 = initialization_exec sys b.Initialization.inputs in
            let outcome =
              lemma67_construction sys ~exec0 ~exec1 ~j_set ~run_bound
                ~v0:a.Initialization.verdict
            in
            { base_report with pivot = Some (Pivot_process flip_index); failed_set = j_set; outcome })))
