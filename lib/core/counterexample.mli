(** The boosting-impossibility engine: mechanized Theorems 2, 9 and 10.

    Given a candidate system that claims to solve [failures]-resilient binary
    consensus while built from services of lower resilience, [refute] runs
    the paper's proof as an algorithm and extracts a concrete witness that
    the claim is false:

    + analyze the Lemma 4 staircase of initializations (exact valence over
      the full G(C) of each);
    + any reachable state already violating agreement or validity yields a
      direct violation execution;
    + from a bivalent initialization, run the Fig. 3 construction: either it
      never terminates (a bivalence-preserving schedule — evidence against
      termination) or it yields a hook (Lemma 5);
    + at the hook, Claims 1–5 of Lemma 8 identify a shared participant; the
      Lemma 6 (process pivot) or Lemma 7 (service pivot) construction then
      fails [failures] processes, silences what the failures allow, and runs
      a fair schedule — producing either a fair execution with ≤ [failures]
      failures in which survivors never decide (a modified-termination
      violation) or, if the system does decide, a replayed fragment after the
      opposite-valent execution (an exact-valence contradiction);
    + if no staircase entry is bivalent, the Lemma 4 flip argument is run
      directly.

    For a genuinely correct system (services resilient enough for the claim)
    every hook's pivot service is un-silenceable and the verdict is
    {!Not_refuted} — which is exactly the §4/§6.3 positive-result boundary. *)

open Ioa

type witness =
  | Agreement_violation of Model.Exec.t
      (** A failure-free execution reaching two different decisions. *)
  | Validity_violation of Model.Exec.t
      (** A failure-free execution deciding a non-input value. *)
  | Non_termination of { exec : Model.Exec.t; failed : int list; proven : bool }
      (** A fair execution with [≤ failures] failures in which no surviving
          initialized process decides. [proven = true] means a lasso was
          detected — the schedule provably repeats forever without a
          decision; [false] means the step budget ran out (bounded
          evidence). *)
  | Valence_contradiction of {
      replay : Model.Exec.t;  (** The opposite-valent execution extended by γ′. *)
      decided : int;
      expected : Valence.verdict;
    }
      (** γ′ replayed after the opposite-valent hook endpoint decided against
          its exact valence — impossible for a faithful implementation, kept
          as a tripwire. *)
  | Divergence of Model.Task.t list
      (** Prefix of a bivalence-preserving schedule that exceeded the
          budget. *)

val pp_witness : Format.formatter -> witness -> unit

val witness_exec : witness -> Model.Exec.t option
(** The execution embedded in a witness, when it carries one ([Divergence]
    carries only a task path). *)

type pivot = Pivot_process of int | Pivot_service of int

val pp_pivot : Format.formatter -> pivot -> unit

type outcome =
  | Refuted of witness
  | Not_refuted of string
      (** No contradiction reachable — the reason explains why (e.g. the
          pivot service cannot be silenced by [failures] failures: the system
          may genuinely be that resilient). *)
  | Out_of_budget of string

val pp_outcome : Format.formatter -> outcome -> unit

type report = {
  staircase : (Value.t list * Valence.verdict) list;
  bivalent_inputs : Value.t list option;
  graph_states : int;  (** States of the G(C) used for the hook phase. *)
  hook : Hook.t option;
  pivot : pivot option;
  failed_set : int list;  (** The J of the Lemma 6/7 construction, if run. *)
  outcome : outcome;
}

val pp_report : Format.formatter -> report -> unit

val refute :
  ?max_states:int ->
  ?run_bound:int ->
  failures:int ->
  Model.System.t ->
  report
(** [refute ~failures sys] attacks the claim that [sys] solves
    [failures]-resilient binary consensus. [failures] is the paper's [f + 1].
    [run_bound] (default 50_000) bounds the fair runs of the Lemma 6/7
    constructions. Requires [0 < failures < n]. *)
