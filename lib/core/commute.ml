type violation = {
  vertex : int;
  e : Model.Task.t;
  e' : Model.Task.t;
  reason : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "vertex %d: %a / %a: %s" v.vertex Model.Task.pp v.e Model.Task.pp
    v.e' v.reason

let participant_equal a b =
  match a, b with
  | Model.System.P i, Model.System.P j -> i = j
  | Model.System.S i, Model.System.S j -> i = j
  | Model.System.P _, Model.System.S _ | Model.System.S _, Model.System.P _ -> false

let shared_participant sys s e e' =
  let ps = Model.System.participants sys s e in
  let ps' = Model.System.participants sys s e' in
  List.find_opt (fun p -> List.exists (participant_equal p) ps') ps

type mismatch = Diverged | Lost of string

let commute_at ?policy sys s e e' =
  (* Both orders must be defined and land in the same state. *)
  let via b first second =
    match Model.System.transition ?policy sys s first with
    | None -> Error (Printf.sprintf "%s not applicable" b)
    | Some (_, s1) -> (
      match Model.System.transition ?policy sys s1 second with
      | None -> Error (Printf.sprintf "%s not applicable after %s" b b)
      | Some (_, s2) -> Ok s2)
  in
  match via "e" e e', via "e'" e' e with
  | Ok s_ee', Ok s_e'e ->
    if Model.State.equal s_ee' s_e'e then Ok () else Error Diverged
  | Error r, _ | _, Error r -> Error (Lost r)

let check_disjoint analysis =
  let g = Valence.graph analysis in
  let sys = Graph.system g in
  let violations = ref [] in
  Graph.iter_states g (fun vertex s ->
    let edges = Graph.succs g vertex in
    List.iter
      (fun (e, _) ->
        List.iter
          (fun (e', _) ->
            if Model.Task.compare e e' < 0 && Option.is_none (shared_participant sys s e e')
            then
              match commute_at sys s e e' with
              | Ok () -> ()
              | Error Diverged ->
                violations :=
                  { vertex; e; e'; reason = "disjoint participants but e'(e(s)) <> e(e'(s))" }
                  :: !violations
              | Error (Lost r) ->
                violations :=
                  { vertex; e; e'; reason = "applicability lost: " ^ r } :: !violations)
          edges)
      edges);
  List.rev !violations

let check_hook_intersection analysis (h : Hook.t) =
  let g = Valence.graph analysis in
  let sys = Graph.system g in
  let s = Graph.state g h.Hook.base in
  if Model.Task.equal h.Hook.e h.Hook.e' then Error "hook has e = e' (violates Claim 1)"
  else
    match shared_participant sys s h.Hook.e h.Hook.e' with
    | Some _ -> Ok ()
    | None -> Error "hook tasks have disjoint participants (violates Claim 2)"
