(** Commutation of tasks with disjoint participants (paper Lemma 8, Claim 2
    and the case analyses of Claims 4–5).

    If [participants(e, s) ∩ participants(e', s) = ∅] then the two tasks
    commute: [e'(e(s)) = e(e'(s))]. The Lemma 8 proof leans on this and on
    specific commuting cases inside a shared service (perform vs. buffer
    access, read vs. read, enqueue vs. dequeue of different buffers). This
    module verifies those facts mechanically over an explored G(C) — it is
    the empirical counterpart of the claims, and a regression net for the
    canonical service semantics. *)

type violation = {
  vertex : int;
  e : Model.Task.t;
  e' : Model.Task.t;
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

type mismatch =
  | Diverged  (** Both orders defined but [e'(e(s)) <> e(e'(s))]. *)
  | Lost of string  (** One order lost applicability midway. *)

val commute_at :
  ?policy:Model.System.policy ->
  Model.System.t -> Model.State.t -> Model.Task.t -> Model.Task.t ->
  (unit, mismatch) result
(** The state-level commutation check both {!check_disjoint} and the static
    independence tests ({!Analysis.Interfere}'s differential suites) share:
    apply the tasks in both orders from [s] under [policy] (default: prefer
    real) and compare the final states. *)

val check_disjoint : Valence.t -> violation list
(** For every explored vertex and every ordered pair of applicable tasks with
    disjoint participants, check [e'(e(s)) = e(e'(s))]. Returns all
    violations (expected: none). *)

val check_hook_intersection : Valence.t -> Hook.t -> (unit, string) result
(** Claims 1–2 at a hook: [e ≠ e'] and the participants of [e] and [e']
    intersect (otherwise the endpoint states would be equal, contradicting
    their opposite valences). *)

val shared_participant :
  Model.System.t -> Model.State.t -> Model.Task.t -> Model.Task.t ->
  Model.System.participant option
(** A participant common to both tasks' next actions at the state, if any. *)
