(** Actions of the complete system, as recorded in executions and traces.

    [Init] and [Fail] are environment inputs; [Decide] is the external
    output; the rest are the hidden communication and internal actions of C
    (§2.2.3). [Dummy] records which task took a dummy step. *)

module Value = Ioa.Value

type net_kind =
  | Drop  (** Discard the head response at the target endpoint. *)
  | Duplicate  (** Re-enqueue a copy of the head response at the tail. *)
  | Delay of int  (** Move the head response [lag] positions back. *)

type t =
  | Init of int * Value.t  (** [init(v)_i]. *)
  | Fail of int  (** [fail_i]. *)
  | Invoke of int * string * Value.t  (** [a_{i,k}]: process output. *)
  | Respond of int * string * Value.t  (** [b_{i,k}]: service output. *)
  | Decide of int * Value.t  (** [decide(v)_i]. *)
  | Proc_internal of int  (** An internal step of P_i. *)
  | Perform of string * int  (** [perform_{i,k}]. *)
  | Compute of string * string  (** [compute_{g,k}]. *)
  | Dummy of Task.t  (** A dummy step of the given task. *)
  | Net of { service : string; endpoint : int; kind : net_kind }
      (** A network-adversary buffer mutation at [service]'s response buffer
          for [endpoint] (omission/duplication/delay faults; delivered by the
          chaos engine's schedules, never produced by task transitions). *)
  | Partition of int list list
      (** The network adversary split the processes into the given blocks
          (§6.3 connectivity weakening); processes not listed share one
          implicit residual block. *)
  | Heal of int list list  (** The matching partition healed. *)

val equal : t -> t -> bool
val pp_net_kind : Format.formatter -> net_kind -> unit
val pp_blocks : Format.formatter -> int list list -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_external : t -> bool
(** [Init], [Fail] and [Decide] — the visible interface of C. *)

val is_dummy : t -> bool

val to_ioa : t -> Ioa.Action.t
(** The {!Ioa.Action} rendering of this action, matching
    {!Services.Sig_names}; used when cross-validating the system layer
    against generic canonical automata. *)
