(** Executions of the complete system.

    An execution records the start state and, per step, the scheduling label
    (environment input or task turn), the action taken, and the resulting
    state. Task labels are what the impossibility engine replays when it
    appends "essentially the same" fragment after a similar state
    (Lemmas 6–7). *)

module Value = Ioa.Value

type label =
  | L_init of int * Value.t  (** Environment delivered [init(v)_i]. *)
  | L_fail of int  (** Environment delivered [fail_i]. *)
  | L_task of Task.t  (** The task that got this turn. *)
  | L_net of { service : string; endpoint : int; kind : Event.net_kind }
      (** The network adversary mutated a response buffer. *)
  | L_partition of int list list  (** A partition came into effect. *)
  | L_heal of int list list  (** The matching partition healed. *)

val pp_label : Format.formatter -> label -> unit

type step = { label : label; event : Event.t; state : State.t }

type t = { start : State.t; rev_steps : step list; obs_fp : int }
(** [obs_fp] caches the observable-history fingerprint incrementally (see
    {!obs_fingerprint}); read it through that accessor. *)

val init : State.t -> t
val last_state : t -> State.t
val length : t -> int
val steps : t -> step list
(** Steps oldest-first. *)

val events : t -> Event.t list
val labels : t -> label list

val task_labels : t -> Task.t list
(** The task sequence of the execution (environment inputs omitted). *)

val is_failure_free : t -> bool
(** No [L_fail] label. *)

val append_init : System.t -> t -> int -> Value.t -> t
val append_fail : System.t -> t -> int -> t

val append_net :
  System.t -> t -> service:string -> endpoint:int -> kind:Event.net_kind -> t option
(** One network-adversary buffer mutation; [None] iff the fault is vacuous
    in the final state (see {!System.apply_net}) — vacuous faults leave no
    trace in the execution. *)

val append_partition : t -> int list list -> t
(** Records the partition event; the state is unchanged — blocking is
    enforced by the chaos scheduler, not the transition relation. *)

val append_heal : t -> int list list -> t

val append_task : ?policy:System.policy -> System.t -> t -> Task.t -> t option
(** One turn of a task from the final state; [None] iff not applicable. *)

val replay_tasks : ?policy:System.policy -> System.t -> t -> Task.t list -> t option
(** Apply a task sequence; [None] if some task is inapplicable at its turn. *)

val decide_events : t -> (int * Value.t) list
(** All [decide(v)_i] events, in order. *)

val obs_fingerprint : t -> int
(** Fingerprint of the monitor-observable event history: invocations,
    performs, computes, responses, decisions, inits, and network-adversary
    events (net faults, partitions, heals — the recovery-aware monitors
    waive verdicts based on them), in order. [Fail], internal and dummy
    events are excluded, so executions differing only in crash placement or
    no-op turns can share a fingerprint. Together with
    {!State.fingerprint} of the final state this keys the chaos explorer's
    cross-run dedup ([Chaos.Fingerprint]). O(1): the fold is maintained
    incrementally as steps are appended. *)

val strip : t -> keep:(step -> bool) -> Task.t list
(** The task sequence of steps satisfying [keep] — used to build the γ′ of
    Lemmas 6–7 (drop failed processes' steps and all dummy steps). *)

val pp : Format.formatter -> t -> unit
(** Prints the event sequence. *)
