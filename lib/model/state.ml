open Ioa

type svc = {
  value : Value.t;
  inv_bufs : Value.t list array;
  resp_bufs : Value.t list array;
}

type t = {
  procs : Value.t array;
  svcs : svc array;
  failed : Spec.Iset.t;
  decisions : Value.t option array;
  inputs : Value.t option array;
}

let compare_list cmp xs ys =
  let rec go xs ys =
    match xs, ys with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs', y :: ys' ->
      let c = cmp x y in
      if c <> 0 then c else go xs' ys'
  in
  go xs ys

let compare_array cmp a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = cmp a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let compare_svc s1 s2 =
  let c = Value.compare s1.value s2.value in
  if c <> 0 then c
  else
    let c = compare_array (compare_list Value.compare) s1.inv_bufs s2.inv_bufs in
    if c <> 0 then c
    else compare_array (compare_list Value.compare) s1.resp_bufs s2.resp_bufs

let compare_opt cmp a b =
  match a, b with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare s1 s2 =
  let c = compare_array Value.compare s1.procs s2.procs in
  if c <> 0 then c
  else
    let c = compare_array compare_svc s1.svcs s2.svcs in
    if c <> 0 then c
    else
      let c = Spec.Iset.compare s1.failed s2.failed in
      if c <> 0 then c
      else
        let c = compare_array (compare_opt Value.compare) s1.decisions s2.decisions in
        if c <> 0 then c
        else compare_array (compare_opt Value.compare) s1.inputs s2.inputs

let equal s1 s2 = compare s1 s2 = 0

let hash s =
  let combine h x = (h * 16777619) lxor x in
  let h = ref 2166136261 in
  Array.iter (fun v -> h := combine !h (Value.hash v)) s.procs;
  Array.iter
    (fun svc ->
      h := combine !h (Value.hash svc.value);
      Array.iter (fun q -> List.iter (fun v -> h := combine !h (Value.hash v)) q) svc.inv_bufs;
      Array.iter (fun q -> List.iter (fun v -> h := combine !h (Value.hash v)) q) svc.resp_bufs)
    s.svcs;
  Spec.Iset.iter (fun i -> h := combine !h i) s.failed;
  Array.iter
    (fun d -> h := combine !h (match d with None -> 17 | Some v -> Value.hash v))
    s.decisions;
  Array.iter
    (fun d -> h := combine !h (match d with None -> 23 | Some v -> Value.hash v))
    s.inputs;
  !h land max_int

(* A 63-bit FNV-1a fold over the full structure. Unlike [hash] (the 32-bit
   mix used by hot hashtables), the fingerprint injects a sentinel at every
   container boundary so adjacent buffers cannot alias, making it fit for
   the exploration engine's cross-run visited sets, where a collision would
   merge genuinely distinct configurations. *)
let fp_prime = 0x100000001b3
let fp_seed = 0x3cbbf29ce484222 (* FNV-1a offset basis folded into 62 bits *)
let fp_combine h x = (h lxor x) * fp_prime

let fingerprint s =
  let h = ref fp_seed in
  let mark tag = h := fp_combine !h tag in
  let value v = h := fp_combine !h (Value.hash v) in
  let buf q =
    mark 0x5eed;
    List.iter value q
  in
  mark 0xa11;
  Array.iter value s.procs;
  Array.iter
    (fun svc ->
      mark 0x5c0;
      value svc.value;
      Array.iter buf svc.inv_bufs;
      mark 0x5c1;
      Array.iter buf svc.resp_bufs)
    s.svcs;
  mark 0xfa1;
  Spec.Iset.iter (fun i -> h := fp_combine !h (i + 1)) s.failed;
  mark 0xdec;
  Array.iter
    (fun d -> h := fp_combine !h (match d with None -> 17 | Some v -> Value.hash v + 1))
    s.decisions;
  mark 0x1a9;
  Array.iter
    (fun d -> h := fp_combine !h (match d with None -> 23 | Some v -> Value.hash v + 1))
    s.inputs;
  !h land max_int

let pp_buf ppf q =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Value.pp)
    q

let pp ppf s =
  Format.fprintf ppf "@[<v 2>state:";
  Array.iteri (fun i v -> Format.fprintf ppf "@,P%d = %a" i Value.pp v) s.procs;
  Array.iteri
    (fun i svc ->
      Format.fprintf ppf "@,S#%d val=%a" i Value.pp svc.value;
      Array.iteri (fun p q -> if q <> [] then Format.fprintf ppf " inv[%d]=%a" p pp_buf q) svc.inv_bufs;
      Array.iteri (fun p q -> if q <> [] then Format.fprintf ppf " resp[%d]=%a" p pp_buf q) svc.resp_bufs)
    s.svcs;
  Format.fprintf ppf "@,failed=%a" Spec.Iset.pp s.failed;
  Array.iteri
    (fun i d -> match d with Some v -> Format.fprintf ppf "@,decided[%d]=%a" i Value.pp v | None -> ())
    s.decisions;
  Format.fprintf ppf "@]"

let with_proc s i v =
  let procs = Array.copy s.procs in
  procs.(i) <- v;
  { s with procs }

let with_svc s idx svc =
  let svcs = Array.copy s.svcs in
  svcs.(idx) <- svc;
  { s with svcs }

let with_decision s i v =
  let decisions = Array.copy s.decisions in
  decisions.(i) <- Some v;
  { s with decisions }

let with_input s i v =
  let inputs = Array.copy s.inputs in
  inputs.(i) <- Some v;
  { s with inputs }

let with_failed s failed = { s with failed }

let svc_push_inv svc ~pos a =
  let inv_bufs = Array.copy svc.inv_bufs in
  inv_bufs.(pos) <- inv_bufs.(pos) @ [ a ];
  { svc with inv_bufs }

let svc_pop_inv svc ~pos =
  match svc.inv_bufs.(pos) with
  | [] -> None
  | a :: rest ->
    let inv_bufs = Array.copy svc.inv_bufs in
    inv_bufs.(pos) <- rest;
    Some (a, { svc with inv_bufs })

let rec last = function [] -> None | [ x ] -> Some x | _ :: rest -> last rest

let svc_push_resp ?(coalesce = false) svc ~pos b =
  if coalesce && (match last svc.resp_bufs.(pos) with Some b' -> Value.equal b b' | None -> false)
  then svc
  else begin
    let resp_bufs = Array.copy svc.resp_bufs in
    resp_bufs.(pos) <- resp_bufs.(pos) @ [ b ];
    { svc with resp_bufs }
  end

let svc_pop_resp svc ~pos =
  match svc.resp_bufs.(pos) with
  | [] -> None
  | b :: rest ->
    let resp_bufs = Array.copy svc.resp_bufs in
    resp_bufs.(pos) <- rest;
    Some (b, { svc with resp_bufs })

let svc_drop_resp svc ~pos =
  match svc.resp_bufs.(pos) with
  | [] -> None
  | _ :: rest ->
    let resp_bufs = Array.copy svc.resp_bufs in
    resp_bufs.(pos) <- rest;
    Some { svc with resp_bufs }

let svc_dup_resp svc ~pos =
  match svc.resp_bufs.(pos) with
  | [] -> None
  | (b :: _) as q ->
    let resp_bufs = Array.copy svc.resp_bufs in
    resp_bufs.(pos) <- q @ [ b ];
    Some { svc with resp_bufs }

let svc_delay_resp svc ~pos ~lag =
  match svc.resp_bufs.(pos) with
  | [] | [ _ ] -> None
  | b :: rest ->
    let lag = min lag (List.length rest) in
    if lag <= 0 then None
    else begin
      let rec insert n q = if n = 0 then b :: q else match q with [] -> [ b ] | x :: q' -> x :: insert (n - 1) q' in
      let resp_bufs = Array.copy svc.resp_bufs in
      resp_bufs.(pos) <- insert lag rest;
      Some { svc with resp_bufs }
    end

let decided_pairs s =
  Array.to_list s.decisions
  |> List.mapi (fun i d -> Option.map (fun v -> i, v) d)
  |> List.filter_map Fun.id

let decided_values s =
  decided_pairs s |> List.map snd |> List.sort_uniq Value.compare
