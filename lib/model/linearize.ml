module Value = Ioa.Value

type event =
  | Call of { endpoint : int; op : Value.t }
  | Return of { endpoint : int; resp : Value.t }

let pp_event ppf = function
  | Call { endpoint; op } -> Format.fprintf ppf "call(%d, %a)" endpoint Value.pp op
  | Return { endpoint; resp } -> Format.fprintf ppf "return(%d, %a)" endpoint Value.pp resp

let history exec ~service =
  List.filter_map
    (fun (step : Exec.step) ->
      match step.Exec.event with
      | Event.Invoke (i, k, op) when String.equal k service -> Some (Call { endpoint = i; op })
      | Event.Respond (i, k, resp) when String.equal k service ->
        Some (Return { endpoint = i; resp })
      | _ -> None)
    (Exec.steps exec)

(* Search state: position in the event list, per-endpoint FIFO of invoked but
   not-yet-linearized operations, per-endpoint FIFO of linearized responses
   awaiting their Return event, and the object value. Encoded structurally
   for memoization. *)
let encode_key idx pending inflight value =
  Value.list [ Value.int idx; pending; inflight; value ]

let push_q m i x =
  let q = Value.map_get ~default:Value.queue_empty (Value.int i) m in
  Value.map_add (Value.int i) (Value.queue_push x q) m

let pop_q m i =
  let q = Value.map_get ~default:Value.queue_empty (Value.int i) m in
  match Value.queue_pop q with
  | None -> None
  | Some (x, rest) -> Some (x, Value.map_add (Value.int i) rest m)

let endpoints_with_pending m =
  List.filter_map
    (fun (k, q) -> if Value.queue_is_empty q then None else Some (Value.to_int k))
    (Value.map_bindings m)

(* --- incremental frontier --- *)

(* A configuration of the search between windows: the per-endpoint pending
   queues (invoked, not yet linearized), the per-endpoint inflight queues
   (linearized, response not yet returned) and the object value. The
   windowed checker is the subset construction over these: a history is
   linearizable iff some configuration survives every window. *)
type config = { pending : Value.t; inflight : Value.t; value : Value.t }

let config_value c = c.value

let config_key c = Value.list [ c.pending; c.inflight; c.value ]

let init_configs (t : Spec.Seq_type.t) =
  List.map
    (fun v0 -> { pending = Value.map_empty; inflight = Value.map_empty; value = v0 })
    t.Spec.Seq_type.initials

let advance ?(max_nodes = 200_000) (t : Spec.Seq_type.t) configs events =
  let events = Array.of_list events in
  let n = Array.length events in
  let nodes = ref 0 in
  let out = Value.Tbl.create 64 in
  let visited = Value.Tbl.create 1024 in
  let overflow = ref false in
  (* Exhaustive DFS (no short-circuit: every accepting end configuration is
     collected — dropping one would make a later window's failure
     unsound). *)
  let rec go idx pending inflight value =
    incr nodes;
    if !nodes > max_nodes then overflow := true
    else begin
      let key = encode_key idx pending inflight value in
      if not (Value.Tbl.mem visited key) then begin
        Value.Tbl.replace visited key ();
        consume idx pending inflight value;
        linearize_now idx pending inflight value
      end
    end
  and consume idx pending inflight value =
    if idx >= n then begin
      let c = { pending; inflight; value } in
      Value.Tbl.replace out (config_key c) c
    end
    else
      match events.(idx) with
      | Call { endpoint; op } -> go (idx + 1) (push_q pending endpoint op) inflight value
      | Return { endpoint; resp } -> (
        match pop_q inflight endpoint with
        | Some (r, inflight') when Value.equal r resp -> go (idx + 1) pending inflight' value
        | _ -> ())
  and linearize_now idx pending inflight value =
    List.iter
      (fun endpoint ->
        match pop_q pending endpoint with
        | None -> ()
        | Some (op, pending') ->
          List.iter
            (fun (resp, value') -> go idx pending' (push_q inflight endpoint resp) value')
            (t.Spec.Seq_type.delta op value))
      (endpoints_with_pending pending)
  in
  List.iter (fun c -> go 0 c.pending c.inflight c.value) configs;
  if !overflow then None
  else Some (Value.Tbl.fold (fun _ c acc -> c :: acc) out [])

let check (t : Spec.Seq_type.t) events =
  let events = Array.of_list events in
  let n = Array.length events in
  let visited = Value.Tbl.create 1024 in
  (* DFS over (idx, pending, inflight, value); returns true iff some
     completion linearizes the suffix from this configuration. *)
  let rec go idx pending inflight value =
    let key = encode_key idx pending inflight value in
    if Value.Tbl.mem visited key then false
      (* already explored and failed: successful paths return immediately *)
    else begin
      let result =
        consume idx pending inflight value || linearize_now idx pending inflight value
      in
      if not result then Value.Tbl.replace visited key ();
      result
    end
  and consume idx pending inflight value =
    if idx >= n then true
    else
      match events.(idx) with
      | Call { endpoint; op } -> go (idx + 1) (push_q pending endpoint op) inflight value
      | Return { endpoint; resp } -> (
        (* The response must be the oldest linearized-but-unreturned result
           of this endpoint. *)
        match pop_q inflight endpoint with
        | Some (r, inflight') when Value.equal r resp -> go (idx + 1) pending inflight' value
        | _ -> false)
  and linearize_now idx pending inflight value =
    List.exists
      (fun endpoint ->
        match pop_q pending endpoint with
        | None -> false
        | Some (op, pending') ->
          List.exists
            (fun (resp, value') ->
              go idx pending' (push_q inflight endpoint resp) value')
            (t.Spec.Seq_type.delta op value))
      (endpoints_with_pending pending)
  in
  List.exists
    (fun v0 -> go 0 Value.map_empty Value.map_empty v0)
    t.Spec.Seq_type.initials
