type decision =
  | Do_task of Task.t
  | Do_fail of int
  | Do_net of { service : string; endpoint : int; kind : Event.net_kind }
  | Do_partition of int list list
  | Do_heal of int list list
  | Skip
  | Stop
type t = step:int -> State.t -> decision
type outcome = Stopped | Scheduler_stop | Quiescent | Budget

let pp_outcome ppf = function
  | Stopped -> Format.pp_print_string ppf "stopped (goal reached)"
  | Scheduler_stop -> Format.pp_print_string ppf "scheduler stop"
  | Quiescent -> Format.pp_print_string ppf "quiescent"
  | Budget -> Format.pp_print_string ppf "step budget exhausted"

let run ?policy ?(stop_when = fun _ -> false) ~max_steps sys exec sched =
  let rec go exec step =
    if stop_when (Exec.last_state exec) then exec, Stopped
    else if step >= max_steps then exec, Budget
    else
      match sched ~step (Exec.last_state exec) with
      | Stop -> exec, Scheduler_stop
      | Skip -> go exec (step + 1)
      | Do_fail i -> go (Exec.append_fail sys exec i) (step + 1)
      | Do_net { service; endpoint; kind } -> (
        match Exec.append_net sys exec ~service ~endpoint ~kind with
        | None -> go exec (step + 1)
        | Some exec -> go exec (step + 1))
      | Do_partition blocks -> go (Exec.append_partition exec blocks) (step + 1)
      | Do_heal blocks -> go (Exec.append_heal exec blocks) (step + 1)
      | Do_task task -> (
        match Exec.append_task ?policy sys exec task with
        | None -> go exec (step + 1)
        | Some exec -> go exec (step + 1))
  in
  go exec 0

let round_robin ?(faults = []) ?(quiesce = true) (sys : System.t) : t =
  let tasks = sys.System.tasks in
  let cursor = ref 0 in
  let pending_faults = ref (List.sort Stdlib.compare faults) in
  (* Quiescence detection: count consecutive turns that left the state
     unchanged; a full silent cycle means fixpoint. *)
  let silent = ref 0 in
  let prev : State.t option ref = ref None in
  fun ~step s ->
    (match !prev with
    | Some s' when State.equal s s' -> incr silent
    | _ -> silent := 0);
    prev := Some s;
    if quiesce && !silent > Array.length tasks then Stop
    else
      match !pending_faults with
      | (at, pid) :: rest when step >= at ->
        pending_faults := rest;
        silent := 0;
        Do_fail pid
      | _ ->
        let t = tasks.(!cursor mod Array.length tasks) in
        incr cursor;
        Do_task t

let random ~seed ?(fail_prob = 0.0) ?(max_failures = 0) (sys : System.t) : t =
  let rng = Random.State.make [| seed |] in
  let tasks = sys.System.tasks in
  let failures = ref 0 in
  fun ~step:_ s ->
    let n = System.n_processes sys in
    let alive =
      List.filter (fun i -> not (Spec.Iset.mem i s.State.failed)) (List.init n Fun.id)
    in
    if
      !failures < max_failures
      && alive <> []
      && Random.State.float rng 1.0 < fail_prob
    then begin
      incr failures;
      Do_fail (List.nth alive (Random.State.int rng (List.length alive)))
    end
    else Do_task tasks.(Random.State.int rng (Array.length tasks))
