type cls = Register | Atomic | Oblivious | General

let pp_cls ppf = function
  | Register -> Format.pp_print_string ppf "register"
  | Atomic -> Format.pp_print_string ppf "atomic"
  | Oblivious -> Format.pp_print_string ppf "failure-oblivious"
  | General -> Format.pp_print_string ppf "general"

type t = {
  id : string;
  endpoints : int array;
  resilience : int;
  cls : cls;
  gtype : Spec.General_type.t;
  seq : Spec.Seq_type.t option;
  coalesce : bool;
}

let sorted_endpoints endpoints =
  let a = Array.of_list (List.sort_uniq Int.compare endpoints) in
  if Array.length a = 0 then invalid_arg "Service: empty endpoint set";
  a

let make ~id ~endpoints ~f ~cls ~coalesce ?seq gtype =
  if f < 0 then invalid_arg "Service: negative resilience";
  { id; endpoints = sorted_endpoints endpoints; resilience = f; cls; gtype; seq; coalesce }

let atomic ~id ~endpoints ~f seq =
  make ~id ~endpoints ~f ~cls:Atomic ~coalesce:false ~seq
    (Spec.General_type.of_sequential (Spec.Seq_type.determinize seq))

let register ~id ~endpoints seq =
  let f = List.length (List.sort_uniq Int.compare endpoints) - 1 in
  make ~id ~endpoints ~f ~cls:Register ~coalesce:false ~seq
    (Spec.General_type.of_sequential (Spec.Seq_type.determinize seq))

let oblivious ~id ~endpoints ~f u =
  make ~id ~endpoints ~f ~cls:Oblivious ~coalesce:false
    (Spec.General_type.of_oblivious (Spec.Service_type.determinize u))

let general ?(coalesce = false) ~id ~endpoints ~f g =
  make ~id ~endpoints ~f ~cls:General ~coalesce (Spec.General_type.determinize g)

let is_wait_free t = t.resilience >= Array.length t.endpoints - 1

let endpoint_pos t i =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      if t.endpoints.(mid) = i then Some mid
      else if t.endpoints.(mid) < i then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length t.endpoints)

let failed_endpoints t failed =
  Array.to_list t.endpoints |> List.filter (fun i -> Spec.Iset.mem i failed) |> Spec.Iset.of_list

let connected_to_all t ~n =
  Array.length t.endpoints = n && Array.for_all (fun i -> i < n) t.endpoints
