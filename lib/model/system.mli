(** The complete system C (paper §2.2.3): processes composed with canonical
    resilient services and reliable registers, with the paper's task
    structure and the determinized transition function [transition(e, s)] of
    §3.1.

    Failures and resilience follow §2.1.3 exactly: a [fail_i] input makes
    P_i's task permanently take dummy steps, and enables the dummy actions of
    every i-perform/i-output task of services connected to [i]; once more
    than [f] endpoints of an f-resilient service have failed, {e all} its
    dummy actions are enabled, so a (dummy-preferring) adversary can silence
    the service while fairness still holds. *)

module Value = Ioa.Value

type t = {
  processes : Process.t array;
  services : Service.t array;
  tasks : Task.t array;  (** All tasks, in a fixed round-robin order. *)
}

val make : processes:Process.t list -> services:Service.t list -> t
(** Validates that process ids are [0 .. n−1] in order, service ids are
    unique, and every service endpoint names an existing process. Raises
    [Invalid_argument] otherwise. *)

val n_processes : t -> int
val service_pos : t -> string -> int
(** Position of a service by id. Raises [Invalid_argument] if unknown. *)

val initial_state : t -> State.t

(** {1 Environment inputs} *)

val apply_init : t -> State.t -> int -> Value.t -> Event.t * State.t
(** The [init(v)_i] input action. *)

val apply_fail : t -> State.t -> int -> Event.t * State.t
(** The [fail_i] input action: marks the process failed (idempotent). *)

val apply_net :
  t -> State.t -> service:string -> endpoint:int -> kind:Event.net_kind -> (Event.t * State.t) option
(** A network-adversary mutation of [service]'s response buffer at
    [endpoint]: drop the head, duplicate the head to the tail, or delay the
    head [lag] positions back. [None] when the fault is vacuous — the
    endpoint does not belong to the service, the buffer is empty, or the
    mutation would not change the buffer (delays on singleton buffers). *)

val initialize : t -> Value.t list -> State.t
(** [initialize sys vs] is the §3.2 initialization: the initial state
    extended with one [init(v_i)_i] per process. Requires one value per
    process. *)

(** {1 Task transitions} *)

type pref =
  | Prefer_real
      (** Take the non-dummy action when one is enabled (the "helpful"
          resolution of the canonical automaton's nondeterminism). *)
  | Prefer_dummy
      (** Take the dummy action whenever it is enabled — the adversarial
          resolution that silences services past their resilience budget. *)

type policy = Task.t -> pref
(** Per-task resolution of the real-vs-dummy nondeterminism. In failure-free
    states no dummy is enabled, so the policy is irrelevant there and
    [transition] is the paper's deterministic [transition(e, s)]. *)

val real_policy : policy
val dummy_policy : policy

val silence_policy : silenced:(int -> bool) -> policy
(** Prefer dummies exactly for tasks of services selected by [silenced]
    (by service position); real otherwise. *)

val dummy_io_enabled : Service.t -> Spec.Iset.t -> int -> bool
(** Whether the dummy i-perform/i-output actions of a service are enabled
    under a failed set: endpoint [i] failed, or more than [f] endpoints
    failed (§2.1.3). Exported for the static analyzer, whose transfer
    functions must mirror the runtime enabledness exactly. *)

val dummy_compute_enabled : Service.t -> Spec.Iset.t -> bool
(** Whether the dummy global-task actions are enabled: more than [f]
    endpoints failed, or every endpoint failed (§2.1.3). *)

val transition : ?policy:policy -> t -> State.t -> Task.t -> (Event.t * State.t) option
(** One turn of a task: [None] iff no action of the task is enabled. Dummy
    steps return the state unchanged. *)

val enabled : ?policy:policy -> t -> State.t -> Task.t -> bool
(** Whether the task is applicable (some action enabled) — §2.2.3. *)

(** {1 Participants (§2.2.3)} *)

type participant = P of int | S of int

val pp_participant : Format.formatter -> participant -> unit

val participants : ?policy:policy -> t -> State.t -> Task.t -> participant list
(** Participants of [action(e, s)] — the automata having the action in their
    signature. Empty if the task is disabled. At most two, and if two, one
    process and one service (§2.2.3). *)
