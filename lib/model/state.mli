(** Global states of the complete system C (paper §2.2.3).

    A state packs the local state of every process, the state of every
    service (value + per-endpoint invocation/response buffers), the set of
    failed processes, and the decisions recorded so far (the paper's
    technical assumption that a [decide(v)_i] output records [v] in the state
    of [P_i], §2.2.1).

    States are immutable; all updates copy. Equality, ordering and hashing
    are structural, which is what the exploration engine memoizes on. *)

open Ioa

type svc = {
  value : Value.t;  (** The service value [val]. *)
  inv_bufs : Value.t list array;
      (** [inv_buffer(i)], indexed by endpoint {e position} in the service's
          endpoint list; head = oldest. *)
  resp_bufs : Value.t list array;  (** [resp_buffer(i)], same indexing. *)
}

type t = {
  procs : Value.t array;  (** Process program states, indexed by pid. *)
  svcs : svc array;  (** Service states, indexed by service position. *)
  failed : Spec.Iset.t;  (** Failed processes. *)
  decisions : Value.t option array;  (** Recorded decision per process. *)
  inputs : Value.t option array;  (** init(v) received per process. *)
}

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val fingerprint : t -> int
(** A cheap structural fingerprint of the configuration: a 63-bit FNV-1a
    fold over the process states, the service states (value plus every
    pending invocation/response buffer, with per-container sentinels so
    adjacent buffers cannot alias), the failed set, and the recorded
    decisions and inputs. [equal s1 s2] implies
    [fingerprint s1 = fingerprint s2]; the converse holds up to 63-bit
    collision. This is what the chaos explorer's cross-run visited sets key
    on — see [Chaos.Fingerprint]. *)

val pp : Format.formatter -> t -> unit

val with_proc : t -> int -> Value.t -> t
(** Functional update of one process state. *)

val with_svc : t -> int -> svc -> t
val with_decision : t -> int -> Value.t -> t
val with_input : t -> int -> Value.t -> t
val with_failed : t -> Spec.Iset.t -> t

val svc_push_inv : svc -> pos:int -> Value.t -> svc
(** Appends an invocation at the tail of [inv_buffer] at endpoint position
    [pos]. *)

val svc_pop_inv : svc -> pos:int -> (Value.t * svc) option
val svc_push_resp : ?coalesce:bool -> svc -> pos:int -> Value.t -> svc
(** Appends a response; with [coalesce] (default false), appending a response
    equal to the current tail is a no-op (used to keep spontaneous
    failure-detector output buffers finite — see DESIGN.md §6). *)

val svc_pop_resp : svc -> pos:int -> (Value.t * svc) option

val svc_drop_resp : svc -> pos:int -> svc option
(** Discards the head response at endpoint position [pos] (omission fault);
    [None] when the buffer is empty — the fault is vacuous. *)

val svc_dup_resp : svc -> pos:int -> svc option
(** Re-enqueues a copy of the head response at the tail (duplication fault);
    [None] when the buffer is empty. *)

val svc_delay_resp : svc -> pos:int -> lag:int -> svc option
(** Moves the head response [lag] positions back in the buffer, clamped to
    the buffer length (delay/reordering fault); [None] when the mutation
    would leave the buffer unchanged (empty, singleton, or [lag <= 0]). *)

val decided_pairs : t -> (int * Value.t) list
(** All [(pid, v)] with a recorded decision. *)

val decided_values : t -> Value.t list
(** Distinct decided values, sorted. *)
