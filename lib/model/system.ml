module Value = Ioa.Value

type t = {
  processes : Process.t array;
  services : Service.t array;
  tasks : Task.t array;
}

let make ~processes ~services =
  let processes = Array.of_list processes in
  let services = Array.of_list services in
  Array.iteri
    (fun i (p : Process.t) ->
      if p.Process.pid <> i then
        invalid_arg (Printf.sprintf "System.make: process at position %d has pid %d" i p.Process.pid))
    processes;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (c : Service.t) ->
      if Hashtbl.mem seen c.Service.id then
        invalid_arg ("System.make: duplicate service id " ^ c.Service.id);
      Hashtbl.replace seen c.Service.id ();
      Array.iter
        (fun i ->
          if i < 0 || i >= Array.length processes then
            invalid_arg
              (Printf.sprintf "System.make: service %s endpoint %d out of range" c.Service.id i))
        c.Service.endpoints)
    services;
  let tasks =
    List.concat
      [
        List.init (Array.length processes) (fun i -> Task.Proc i);
        List.concat
          (List.mapi
             (fun svc (c : Service.t) ->
               List.concat_map
                 (fun endpoint ->
                   [ Task.Svc_perform { svc; endpoint }; Task.Svc_output { svc; endpoint } ])
                 (Array.to_list c.Service.endpoints)
               @ List.map
                   (fun glob -> Task.Svc_compute { svc; glob })
                   c.Service.gtype.Spec.General_type.global_tasks)
             (Array.to_list services));
      ]
    |> Array.of_list
  in
  { processes; services; tasks }

let n_processes t = Array.length t.processes

let service_pos t id =
  let rec go i =
    if i >= Array.length t.services then
      invalid_arg ("System.service_pos: unknown service " ^ id)
    else if String.equal t.services.(i).Service.id id then i
    else go (i + 1)
  in
  go 0

let initial_state t =
  let n = Array.length t.processes in
  {
    State.procs = Array.map (fun (p : Process.t) -> p.Process.start) t.processes;
    svcs =
      Array.map
        (fun (c : Service.t) ->
          let m = Array.length c.Service.endpoints in
          {
            State.value = List.hd c.Service.gtype.Spec.General_type.initials;
            inv_bufs = Array.make m [];
            resp_bufs = Array.make m [];
          })
        t.services;
    failed = Spec.Iset.empty;
    decisions = Array.make n None;
    inputs = Array.make n None;
  }

let apply_init t s i v =
  let p = t.processes.(i) in
  let s = State.with_proc s i (p.Process.on_init s.State.procs.(i) v) in
  Event.Init (i, v), State.with_input s i v

let apply_fail _t s i = Event.Fail i, State.with_failed s (Spec.Iset.add i s.State.failed)

let apply_net t s ~service ~endpoint ~kind =
  let svc = service_pos t service in
  let c = t.services.(svc) in
  match Service.endpoint_pos c endpoint with
  | None -> None
  | Some pos ->
    let updated =
      match kind with
      | Event.Drop -> State.svc_drop_resp s.State.svcs.(svc) ~pos
      | Event.Duplicate -> State.svc_dup_resp s.State.svcs.(svc) ~pos
      | Event.Delay lag -> State.svc_delay_resp s.State.svcs.(svc) ~pos ~lag
    in
    Option.map
      (fun st -> Event.Net { service; endpoint; kind }, State.with_svc s svc st)
      updated

let initialize t vs =
  if List.length vs <> Array.length t.processes then
    invalid_arg "System.initialize: need one input per process";
  List.fold_left
    (fun (s, i) v -> snd (apply_init t s i v), i + 1)
    (initial_state t, 0) vs
  |> fst

type pref = Prefer_real | Prefer_dummy
type policy = Task.t -> pref

let real_policy _ = Prefer_real
let dummy_policy _ = Prefer_dummy

let silence_policy ~silenced task =
  match task with
  | Task.Svc_perform { svc; _ } | Task.Svc_output { svc; _ } | Task.Svc_compute { svc; _ } ->
    if silenced svc then Prefer_dummy else Prefer_real
  | Task.Proc _ -> Prefer_real

let totality_error (c : Service.t) what =
  invalid_arg
    (Printf.sprintf "service %s: %s relation empty (totality violation)" c.Service.id what)

(* Apply a response map to a service state, translating endpoints to buffer
   positions. Responses for endpoints not connected to the service indicate a
   service-type bug and raise. *)
let apply_response_map (c : Service.t) svc_state rmap =
  List.fold_left
    (fun st (j, rs) ->
      match Service.endpoint_pos c j with
      | None ->
        invalid_arg
          (Printf.sprintf "service %s: response for non-endpoint %d" c.Service.id j)
      | Some pos ->
        List.fold_left
          (fun st r -> State.svc_push_resp ~coalesce:c.Service.coalesce st ~pos r)
          st rs)
    svc_state rmap

let proc_transition t s i =
  if Spec.Iset.mem i s.State.failed then Some (Event.Dummy (Task.Proc i), s)
  else
    let p = t.processes.(i) in
    match p.Process.step s.State.procs.(i) with
    | Process.Internal next -> Some (Event.Proc_internal i, State.with_proc s i next)
    | Process.Decide { value; next } ->
      let s = State.with_proc s i next in
      let s =
        (* Record the first decision (§2.2.1 technical assumption). *)
        match s.State.decisions.(i) with
        | None -> State.with_decision s i value
        | Some _ -> s
      in
      Some (Event.Decide (i, value), s)
    | Process.Invoke { service; op; next } -> (
      let svc = service_pos t service in
      let c = t.services.(svc) in
      match Service.endpoint_pos c i with
      | None ->
        invalid_arg
          (Printf.sprintf "process %d invokes %s but is not an endpoint" i service)
      | Some pos ->
        let svc_state = State.svc_push_inv s.State.svcs.(svc) ~pos op in
        let s = State.with_proc s i next in
        Some (Event.Invoke (i, service, op), State.with_svc s svc svc_state))

let dummy_io_enabled (c : Service.t) failed i =
  let failed_c = Service.failed_endpoints c failed in
  Spec.Iset.mem i failed_c || Spec.Iset.cardinal failed_c > c.Service.resilience

let dummy_compute_enabled (c : Service.t) failed =
  let failed_c = Service.failed_endpoints c failed in
  Spec.Iset.cardinal failed_c > c.Service.resilience
  || Array.for_all (fun i -> Spec.Iset.mem i failed) c.Service.endpoints

let perform_transition t s ~pref ~svc ~endpoint:i =
  let c = t.services.(svc) in
  match Service.endpoint_pos c i with
  | None -> None
  | Some pos ->
    let svc_state = s.State.svcs.(svc) in
    let dummy_ok = dummy_io_enabled c s.State.failed i in
    let task = Task.Svc_perform { svc; endpoint = i } in
    let real () =
      match State.svc_pop_inv svc_state ~pos with
      | None -> None
      | Some (a, svc_state) ->
        let failed_c = Service.failed_endpoints c s.State.failed in
        (match
           c.Service.gtype.Spec.General_type.delta_inv a i svc_state.State.value
             ~failed:failed_c
         with
        | [] -> totality_error c "delta_inv"
        | (rmap, value') :: _ ->
          let svc_state = { svc_state with State.value = value' } in
          let svc_state = apply_response_map c svc_state rmap in
          Some (Event.Perform (c.Service.id, i), State.with_svc s svc svc_state))
    in
    let dummy () = if dummy_ok then Some (Event.Dummy task, s) else None in
    (match pref with
    | Prefer_real -> ( match real () with Some r -> Some r | None -> dummy ())
    | Prefer_dummy -> ( match dummy () with Some r -> Some r | None -> real ()))

let output_transition t s ~pref ~svc ~endpoint:i =
  let c = t.services.(svc) in
  match Service.endpoint_pos c i with
  | None -> None
  | Some pos ->
    let svc_state = s.State.svcs.(svc) in
    let dummy_ok = dummy_io_enabled c s.State.failed i in
    let task = Task.Svc_output { svc; endpoint = i } in
    let real () =
      match State.svc_pop_resp svc_state ~pos with
      | None -> None
      | Some (b, svc_state) ->
        let p = t.processes.(i) in
        let proc_state =
          p.Process.on_response s.State.procs.(i) ~service:c.Service.id b
        in
        let s = State.with_svc s svc svc_state in
        Some (Event.Respond (i, c.Service.id, b), State.with_proc s i proc_state)
    in
    let dummy () = if dummy_ok then Some (Event.Dummy task, s) else None in
    (match pref with
    | Prefer_real -> ( match real () with Some r -> Some r | None -> dummy ())
    | Prefer_dummy -> ( match dummy () with Some r -> Some r | None -> real ()))

let compute_transition t s ~pref ~svc ~glob =
  let c = t.services.(svc) in
  let svc_state = s.State.svcs.(svc) in
  let dummy_ok = dummy_compute_enabled c s.State.failed in
  let task = Task.Svc_compute { svc; glob } in
  let real () =
    let failed_c = Service.failed_endpoints c s.State.failed in
    match
      c.Service.gtype.Spec.General_type.delta_glob glob svc_state.State.value
        ~failed:failed_c
    with
    | [] -> totality_error c "delta_glob"
    | (rmap, value') :: _ ->
      let svc_state = { svc_state with State.value = value' } in
      let svc_state = apply_response_map c svc_state rmap in
      Some (Event.Compute (c.Service.id, glob), State.with_svc s svc svc_state)
  in
  let dummy () = if dummy_ok then Some (Event.Dummy task, s) else None in
  match pref with
  | Prefer_real -> real ()
  | Prefer_dummy -> ( match dummy () with Some r -> Some r | None -> real ())

let transition ?(policy = real_policy) t s task =
  let pref = policy task in
  match task with
  | Task.Proc i -> proc_transition t s i
  | Task.Svc_perform { svc; endpoint } -> perform_transition t s ~pref ~svc ~endpoint
  | Task.Svc_output { svc; endpoint } -> output_transition t s ~pref ~svc ~endpoint
  | Task.Svc_compute { svc; glob } -> compute_transition t s ~pref ~svc ~glob

let enabled ?policy t s task = Option.is_some (transition ?policy t s task)

type participant = P of int | S of int

let pp_participant ppf = function
  | P i -> Format.fprintf ppf "P%d" i
  | S k -> Format.fprintf ppf "S#%d" k

let participants ?policy t s task =
  match transition ?policy t s task with
  | None -> []
  | Some (event, _) -> (
    match event with
    | Event.Invoke (i, id, _) -> [ P i; S (service_pos t id) ]
    | Event.Respond (i, id, _) -> [ P i; S (service_pos t id) ]
    | Event.Decide (i, _) | Event.Proc_internal i | Event.Init (i, _) -> [ P i ]
    | Event.Perform (id, _) | Event.Compute (id, _) -> [ S (service_pos t id) ]
    | Event.Fail i -> [ P i ]
    | Event.Dummy (Task.Proc i) -> [ P i ]
    | Event.Dummy (Task.Svc_perform { svc; _ })
    | Event.Dummy (Task.Svc_output { svc; _ })
    | Event.Dummy (Task.Svc_compute { svc; _ }) -> [ S svc ]
    | Event.Net { service; _ } -> [ S (service_pos t service) ]
    | Event.Partition _ | Event.Heal _ -> [])
