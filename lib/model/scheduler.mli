(** Schedulers: fair and adversarial drivers for the complete system.

    A scheduler produces, per step, either an environment input (a failure)
    or a task turn. The built-in schedulers implement the executions used in
    the paper's proofs: round-robin over all tasks (the fairness witness of
    Fig. 3 and Lemmas 6–7), and seeded-random scheduling for stress tests. *)

type decision =
  | Do_task of Task.t
  | Do_fail of int
  | Do_net of { service : string; endpoint : int; kind : Event.net_kind }
      (** Deliver a network-adversary buffer mutation (vacuous faults are
          skipped by {!run} without recording a step). *)
  | Do_partition of int list list  (** Record a partition taking effect. *)
  | Do_heal of int list list  (** Record the matching heal. *)
  | Skip
      (** Consume a step of budget without scheduling anything — used by the
          chaos scheduler to hold back tasks blocked by an active
          partition. *)
  | Stop

type t = step:int -> State.t -> decision
(** Schedulers may close over mutable cursor state. *)

type outcome =
  | Stopped  (** [stop_when] became true. *)
  | Scheduler_stop  (** The scheduler returned [Stop]. *)
  | Quiescent
      (** A full round of task attempts changed nothing (every task disabled
          or spinning on dummy/no-op steps). *)
  | Budget  (** [max_steps] reached. *)

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?policy:System.policy ->
  ?stop_when:(State.t -> bool) ->
  max_steps:int ->
  System.t ->
  Exec.t ->
  t ->
  Exec.t * outcome
(** Drive the system. Disabled tasks are skipped (they still consume a step
    of budget). Quiescence is detected only by {!round_robin}-style
    schedulers that report it via [Stop]; generic runs end by [stop_when] or
    budget. *)

val round_robin :
  ?faults:(int * int) list ->
  ?quiesce:bool ->
  System.t ->
  t
(** Cycle through all tasks of the system in their fixed order, forever.
    [faults] is a list of [(step, pid)]: before the given step index, deliver
    [fail_pid]. With [quiesce] (default true), returns [Stop] after a full
    cycle in which no task changed the state — for terminated protocols this
    is the fair-execution fixpoint. *)

val random :
  seed:int ->
  ?fail_prob:float ->
  ?max_failures:int ->
  System.t ->
  t
(** Pick uniformly among all tasks each step; with probability [fail_prob]
    (default 0) fail a random alive process instead, up to [max_failures]. *)
