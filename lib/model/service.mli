(** Service descriptors for the complete system (paper §2.2.2).

    A descriptor names a service, fixes its endpoint set J, its resilience
    level f and its class in the paper's hierarchy, and carries the unified
    executable {!Spec.General_type.t} obtained through the §5.1/§6.1
    embeddings. The class tag is what the similarity definitions of §3.5 and
    §6.3 dispatch on (K, K1, K2, R). *)


type cls =
  | Register  (** Canonical reliable (wait-free) read/write register. *)
  | Atomic  (** Canonical f-resilient atomic object (Fig. 1). *)
  | Oblivious  (** Canonical f-resilient failure-oblivious service (Fig. 4). *)
  | General  (** Canonical f-resilient general service (Fig. 8). *)

val pp_cls : Format.formatter -> cls -> unit

type t = {
  id : string;  (** Unique service index [k] (or [r] for registers). *)
  endpoints : int array;  (** J, sorted ascending. *)
  resilience : int;  (** f. *)
  cls : cls;
  gtype : Spec.General_type.t;
  seq : Spec.Seq_type.t option;
      (** For {!Register}/{!Atomic} services, the sequential type the
          canonical automaton was built from (before determinization) —
          retained so observers ({!Linearize}-based monitors) can check
          histories against the original specification. [None] for
          oblivious/general services, which have no sequential spec. *)
  coalesce : bool;
      (** Deduplicate a response equal to the current buffer tail when
          pushing (keeps spontaneous-output services finite-state; documented
          substitution, DESIGN.md §6). *)
}

val atomic : id:string -> endpoints:int list -> f:int -> Spec.Seq_type.t -> t
(** An f-resilient atomic object. The sequential type is determinized
    (§3.1). *)

val register : id:string -> endpoints:int list -> Spec.Seq_type.t -> t
(** A reliable register: wait-free, [f = |J| − 1]. *)

val oblivious : id:string -> endpoints:int list -> f:int -> Spec.Service_type.t -> t
val general : ?coalesce:bool -> id:string -> endpoints:int list -> f:int -> Spec.General_type.t -> t

val is_wait_free : t -> bool
(** [f ≥ |J| − 1] (§2.1.3). *)

val endpoint_pos : t -> int -> int option
(** Position of a process in the endpoint array, if connected. *)

val failed_endpoints : t -> Spec.Iset.t -> Spec.Iset.t
(** The failures visible to this service: [failed ∩ J]. *)

val connected_to_all : t -> n:int -> bool
(** Whether J = {0, ..., n−1} — the Theorem 10 connectivity requirement for
    general services. *)
