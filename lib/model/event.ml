module Value = Ioa.Value

type net_kind = Drop | Duplicate | Delay of int

type t =
  | Init of int * Value.t
  | Fail of int
  | Invoke of int * string * Value.t
  | Respond of int * string * Value.t
  | Decide of int * Value.t
  | Proc_internal of int
  | Perform of string * int
  | Compute of string * string
  | Dummy of Task.t
  | Net of { service : string; endpoint : int; kind : net_kind }
  | Partition of int list list
  | Heal of int list list

let equal a b = Stdlib.compare a b = 0

let pp_net_kind ppf = function
  | Drop -> Format.pp_print_string ppf "drop"
  | Duplicate -> Format.pp_print_string ppf "dup"
  | Delay lag -> Format.fprintf ppf "delay(%d)" lag

let pp_blocks ppf blocks =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '|')
    (fun ppf block ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '.')
        Format.pp_print_int ppf block)
    ppf blocks

let pp ppf = function
  | Init (i, v) -> Format.fprintf ppf "init(%a)_%d" Value.pp v i
  | Fail i -> Format.fprintf ppf "fail_%d" i
  | Invoke (i, k, a) -> Format.fprintf ppf "%a_{%d,%s}" Value.pp a i k
  | Respond (i, k, b) -> Format.fprintf ppf "%a_{%d,%s}^out" Value.pp b i k
  | Decide (i, v) -> Format.fprintf ppf "decide(%a)_%d" Value.pp v i
  | Proc_internal i -> Format.fprintf ppf "step_%d" i
  | Perform (k, i) -> Format.fprintf ppf "perform_{%d,%s}" i k
  | Compute (k, g) -> Format.fprintf ppf "compute_{%s,%s}" g k
  | Dummy e -> Format.fprintf ppf "dummy(%a)" Task.pp e
  | Net { service; endpoint; kind } ->
    Format.fprintf ppf "%a_{%d,%s}" pp_net_kind kind endpoint service
  | Partition blocks -> Format.fprintf ppf "partition(%a)" pp_blocks blocks
  | Heal blocks -> Format.fprintf ppf "heal(%a)" pp_blocks blocks

let to_string t = Format.asprintf "%a" pp t

let is_external = function Init _ | Fail _ | Decide _ -> true | _ -> false
let is_dummy = function Dummy _ -> true | _ -> false

let to_ioa = function
  | Init (i, v) -> Services.Sig_names.init i v
  | Fail i -> Services.Sig_names.fail i
  | Invoke (i, k, a) -> Services.Sig_names.invoke i k a
  | Respond (i, k, b) -> Services.Sig_names.respond i k b
  | Decide (i, v) -> Services.Sig_names.decide i v
  | Proc_internal i -> Services.Sig_names.step i
  | Perform (k, i) -> Services.Sig_names.perform i k
  | Compute (k, g) -> Services.Sig_names.compute g k
  | Dummy (Task.Proc i) -> Services.Sig_names.step i
  | Dummy (Task.Svc_perform { svc; endpoint }) ->
    Services.Sig_names.dummy_perform endpoint (string_of_int svc)
  | Dummy (Task.Svc_output { svc; endpoint }) ->
    Services.Sig_names.dummy_output endpoint (string_of_int svc)
  | Dummy (Task.Svc_compute { svc; glob }) ->
    Services.Sig_names.dummy_compute glob (string_of_int svc)
  | Net { service; endpoint; kind } ->
    let k, lag = match kind with Drop -> "drop", 0 | Duplicate -> "dup", 0 | Delay l -> "delay", l in
    Services.Sig_names.net_fault k endpoint service lag
  | Partition blocks -> Services.Sig_names.partition blocks
  | Heal blocks -> Services.Sig_names.heal blocks
