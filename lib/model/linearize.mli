(** Linearizability checking of service histories against sequential types
    (Herlihy–Wing [12], adapted to the canonical objects' pipelined FIFO
    semantics).

    A history is the sequence of invocation and response events observed at
    one service during an execution. The checker searches for a
    linearization: an interleaving-consistent order of operation "takes
    effect" points such that (a) each operation linearizes between its
    invocation and its response, (b) operations of one endpoint linearize in
    invocation order (the canonical object's per-endpoint FIFO buffers), and
    (c) the resulting sequential behaviour is allowed by the type's δ —
    including nondeterministic δ, where any resolution may justify the
    history. Pending operations at the end of the history may or may not
    have taken effect.

    Canonical atomic objects are linearizable by construction (their val and
    buffers ARE the linearization); this module is the independent observer
    that verifies it from histories alone, and the tool users get for
    checking their own object implementations. *)

open Ioa

type event =
  | Call of { endpoint : int; op : Value.t }
  | Return of { endpoint : int; resp : Value.t }

val pp_event : Format.formatter -> event -> unit

val history : Exec.t -> service:string -> event list
(** Project an execution onto one service's invocation/response events. *)

val check : Spec.Seq_type.t -> event list -> bool
(** Whether the history is linearizable with respect to the type. Complete
    backtracking search with memoization; exponential worst case, intended
    for test-sized histories. *)

(** {2 Incremental frontier}

    Windowed checking for long histories: the subset construction over
    search configurations. A configuration is the residual search state
    between windows — per-endpoint pending queues (invoked, not yet
    linearized), per-endpoint inflight queues (linearized, response not yet
    returned) and the object value. [advance] pushes a whole set of
    configurations through one window of events, returning {e every}
    reachable end configuration; a history is linearizable iff iterating
    [advance] over any partition of it into windows, starting from
    [init_configs], never yields the empty frontier. Equivalent to [check]
    on the concatenation (the window boundary is only a memo boundary), which
    the tests pin. *)

type config
(** An opaque search configuration. *)

val config_value : config -> Value.t
(** The object value component (diagnostics only). *)

val init_configs : Spec.Seq_type.t -> config list
(** One empty-queue configuration per initial value of the type. *)

val advance :
  ?max_nodes:int -> Spec.Seq_type.t -> config list -> event list -> config list option
(** All configurations reachable from the given frontier after consuming the
    event window, deduplicated. [Some []] means no linearization survives —
    the history is non-linearizable. [None] means the [?max_nodes] search
    budget (default 200k nodes) was exhausted: the verdict is unknown and
    the caller must report a truncation, not a pass. *)
