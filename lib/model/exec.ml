module Value = Ioa.Value

type label =
  | L_init of int * Value.t
  | L_fail of int
  | L_task of Task.t
  | L_net of { service : string; endpoint : int; kind : Event.net_kind }
  | L_partition of int list list
  | L_heal of int list list

let pp_label ppf = function
  | L_init (i, v) -> Format.fprintf ppf "init(%a)_%d" Value.pp v i
  | L_fail i -> Format.fprintf ppf "fail_%d" i
  | L_task e -> Task.pp ppf e
  | L_net { service; endpoint; kind } ->
    Format.fprintf ppf "%a_{%d,%s}" Event.pp_net_kind kind endpoint service
  | L_partition blocks -> Format.fprintf ppf "partition(%a)" Event.pp_blocks blocks
  | L_heal blocks -> Format.fprintf ppf "heal(%a)" Event.pp_blocks blocks

type step = { label : label; event : Event.t; state : State.t }
type t = { start : State.t; rev_steps : step list; obs_fp : int }

(* Incremental fingerprint of the monitor-observable event history: the
   operation flow (invocations, performs, computes, responses), decisions,
   and inits — everything the property monitors can distinguish histories
   by. Fail, internal and dummy events are deliberately excluded, so two
   executions that differ only in where a crash landed (or in no-op turns)
   share a fingerprint when their observable behaviour coincides.
   Order-sensitive; same FNV-1a fold as {!State.fingerprint}. Maintained in
   {!push} so reading it is O(1) — the parallel explorer probes it once per
   run. *)
let obs_fp_seed = 0x0b5e4

let obs_fp_event h =
  let prime = 0x100000001b3 in
  let combine h x = (h lxor x) * prime in
  let hstr s = combine 0x57 (Hashtbl.hash (s : string)) in
  function
  | Event.Init (i, v) -> combine (combine (combine h 1) i) (Value.hash v)
  | Event.Invoke (i, svc, v) ->
    combine (combine (combine (combine h 2) i) (hstr svc)) (Value.hash v)
  | Event.Respond (i, svc, v) ->
    combine (combine (combine (combine h 3) i) (hstr svc)) (Value.hash v)
  | Event.Decide (i, v) -> combine (combine (combine h 4) i) (Value.hash v)
  | Event.Perform (svc, k) -> combine (combine (combine h 5) (hstr svc)) k
  | Event.Compute (g, k) -> combine (combine (combine h 6) (hstr g)) (hstr k)
  (* Network-adversary events are monitor-observable: the recovery-aware
     monitors waive verdicts based on them, so executions differing only in
     a net fault must not share a fingerprint. Crash-only executions never
     carry these events, keeping crash-only fingerprints unchanged. *)
  | Event.Net { service; endpoint; kind } ->
    let k, lag =
      match kind with Event.Drop -> 1, 0 | Event.Duplicate -> 2, 0 | Event.Delay l -> 3, l
    in
    combine (combine (combine (combine (combine h 7) endpoint) (hstr service)) k) lag
  | Event.Partition blocks ->
    List.fold_left
      (fun h block -> List.fold_left (fun h i -> combine h (i + 1)) (combine h 0xb) block)
      (combine h 8) blocks
  | Event.Heal blocks ->
    List.fold_left
      (fun h block -> List.fold_left (fun h i -> combine h (i + 1)) (combine h 0xb) block)
      (combine h 9) blocks
  | Event.Fail _ | Event.Proc_internal _ | Event.Dummy _ -> h

let init start = { start; rev_steps = []; obs_fp = obs_fp_seed }
let last_state t = match t.rev_steps with [] -> t.start | { state; _ } :: _ -> state
let length t = List.length t.rev_steps
let steps t = List.rev t.rev_steps
let events t = List.rev_map (fun s -> s.event) t.rev_steps
let labels t = List.rev_map (fun s -> s.label) t.rev_steps

let task_labels t =
  List.filter_map (function { label = L_task e; _ } -> Some e | _ -> None) (steps t)

let is_failure_free t =
  List.for_all (function { label = L_fail _; _ } -> false | _ -> true) t.rev_steps

let push t label event state =
  {
    t with
    rev_steps = { label; event; state } :: t.rev_steps;
    obs_fp = obs_fp_event t.obs_fp event;
  }

let append_init sys t i v =
  let event, state = System.apply_init sys (last_state t) i v in
  push t (L_init (i, v)) event state

let append_fail sys t i =
  let event, state = System.apply_fail sys (last_state t) i in
  push t (L_fail i) event state

let append_net sys t ~service ~endpoint ~kind =
  match System.apply_net sys (last_state t) ~service ~endpoint ~kind with
  | None -> None
  | Some (event, state) -> Some (push t (L_net { service; endpoint; kind }) event state)

let append_partition t blocks =
  push t (L_partition blocks) (Event.Partition blocks) (last_state t)

let append_heal t blocks = push t (L_heal blocks) (Event.Heal blocks) (last_state t)

let append_task ?policy sys t task =
  match System.transition ?policy sys (last_state t) task with
  | None -> None
  | Some (event, state) -> Some (push t (L_task task) event state)

let replay_tasks ?policy sys t tasks =
  List.fold_left
    (fun acc task -> Option.bind acc (fun t -> append_task ?policy sys t task))
    (Some t) tasks

let decide_events t =
  List.filter_map
    (function { event = Event.Decide (i, v); _ } -> Some (i, v) | _ -> None)
    (steps t)

let obs_fingerprint t = t.obs_fp land max_int

let strip t ~keep =
  List.filter_map
    (fun s -> match s.label with L_task e when keep s -> Some e | _ -> None)
    (steps t)

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ . ") Event.pp)
    (events t)
